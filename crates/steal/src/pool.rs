//! Persistent work-stealing worker pool.
//!
//! `P` worker threads each own a Chase–Lev deque. A job spawned from a
//! worker goes to that worker's own deque (LIFO pop preserves the Cilk-like
//! depth-first execution order that makes NABBIT's traversal cache-friendly);
//! a job submitted from outside goes to a shared injector queue. Idle
//! workers repeatedly try their own deque, the injector, and random victims,
//! then park on the pool's [`Parker`].
//!
//! The pool exposes **fire-and-forget** spawning plus quiescence detection
//! ([`Pool::run_until_complete`]): NABBIT's routines only ever spawn and
//! never join, and a task-graph run is over when every spawned traversal
//! job has drained (by which time the sink task has completed).
//!
//! Panics inside jobs are caught, the first payload is kept, and
//! `run_until_complete` re-raises it on the submitting thread — otherwise a
//! panicking job would leak the quiescence count and deadlock the run.

use crate::deque::{self, Steal, Stealer, Worker};
use crate::instance::{InstanceHandle, QuiesceHook};
use crate::latch::CountLatch;
use crate::metrics::{CachePadded, MetricsSnapshot, WorkerMetrics};
use crate::parker::Parker;
use crate::priority::{PrioInjector, Priority};
use crate::rng::XorShift64Star;
use ft_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;
use std::thread::JoinHandle;

pub use crate::job::Job;

/// A place jobs can be spawned into. [`Scope`] is generic over this so the
/// same scheduler code runs on the multithreaded [`Pool`] and on
/// alternative executors (e.g. a deterministic single-threaded pool for
/// schedule exploration).
pub trait SpawnHost {
    /// Enqueue a fire-and-forget job.
    fn spawn_job(&self, job: Job);

    /// Enqueue a job with an acquisition priority. Hosts without a
    /// priority lane may ignore `prio`; the default does exactly that, so
    /// priority mode degrades to FIFO rather than failing on simple
    /// executors.
    fn spawn_job_with(&self, job: Job, prio: Priority) {
        let _ = prio;
        self.spawn_job(job);
    }

    /// Number of workers executing jobs.
    fn num_threads(&self) -> usize;

    /// Index of the calling worker, if the current thread is one.
    fn worker_index(&self) -> Option<usize>;
}

/// An executor that can run a root job to quiescence: every transitively
/// spawned job finishes before `execute_job` returns, and the first job
/// panic is re-raised on the caller.
///
/// `&Pool` coerces to `&dyn Executor`, so scheduler entry points take
/// `&dyn Executor` without changing existing call sites.
pub trait Executor {
    /// Run `root` (which may spawn more work) and block until quiescent.
    fn execute_job(&self, root: Job);

    /// Number of workers executing jobs.
    fn num_threads(&self) -> usize;

    /// Submit `root` as an independent **instance** (epoch): the job and
    /// everything it transitively spawns are accounted to a per-instance
    /// latch instead of the executor-wide one, so concurrent instances
    /// complete independently over the shared workers. Panics inside the
    /// instance are captured in the returned handle, never in the
    /// executor's own panic slot.
    ///
    /// Unlike [`Executor::execute_job`] this does not block; await or poll
    /// the returned [`InstanceHandle`].
    fn submit_instance(&self, root: Job, on_quiesce: Option<QuiesceHook>) -> InstanceHandle;

    /// Number of jobs currently visible in this executor's queues. The
    /// service layer uses it as an admission watermark; a racy snapshot is
    /// fine for that purpose.
    fn queued_jobs(&self) -> u64;

    /// Run pending instance work to quiescence on executors that have no
    /// autonomous worker threads (the deterministic single-threaded pool);
    /// a no-op on threaded pools, whose workers drain instances on their
    /// own. Call before blocking on an [`InstanceHandle`] when the
    /// executor might be single-threaded.
    fn drive(&self) {}
}

/// Configuration for a [`Pool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Seed for the per-worker victim-selection RNGs.
    pub seed: u64,
    /// How many full steal sweeps an idle worker performs before parking.
    pub steal_rounds: u32,
}

impl PoolConfig {
    /// Config with `threads` workers and default tuning.
    pub fn with_threads(threads: usize) -> Self {
        PoolConfig {
            threads: threads.max(1),
            seed: 0x5EED_CAFE,
            // Sweeps before parking: enough to ride out short gaps on real
            // multicore, small enough that oversubscribed workers (threads
            // > cores) don't burn the cores the runnable workers need.
            steal_rounds: 8,
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// The two stealer ends of one worker's deque pair.
struct LaneStealers {
    hot: Stealer<Job>,
    normal: Stealer<Job>,
}

/// Shared state between the pool handle and its workers.
struct PoolState {
    stealers: Vec<LaneStealers>,
    injector: PrioInjector<Job>,
    /// Pool-wide count of jobs sitting in any queue (local deques + the
    /// injector): incremented after a job is enqueued, decremented when a
    /// worker acquires one. Idle workers consult this single counter to
    /// decide whether to park — O(1) instead of sweeping every stealer.
    queued: CachePadded<AtomicU64>,
    parker: Parker,
    pending: CountLatch,
    metrics: Vec<CachePadded<WorkerMetrics>>,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    threads: usize,
    steal_rounds: u32,
}

/// Handle for spawning work into an executor from inside a job or from the
/// submitting thread.
pub struct Scope<'a> {
    host: &'a dyn SpawnHost,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("num_threads", &self.num_threads())
            .field("worker_index", &self.worker_index())
            .finish()
    }
}

impl<'a> Scope<'a> {
    /// Build a scope over any spawn host. Executors call this; jobs only
    /// ever receive a ready-made `&Scope`.
    pub fn for_host(host: &'a dyn SpawnHost) -> Self {
        Scope { host }
    }

    /// Spawn a fire-and-forget job.
    ///
    /// From a worker thread of this pool the job lands on the worker's own
    /// deque; otherwise it goes through the shared injector.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>) + Send + 'static,
    {
        self.host.spawn_job(Job::new(f));
    }

    /// Spawn a fire-and-forget job with an acquisition priority.
    ///
    /// On the [`Pool`], [`Priority::High`] jobs land in the hot lane (the
    /// worker's hot deque or the injector's hot lane) and are acquired
    /// before any visible normal job. Hosts without priority lanes treat
    /// this as [`Scope::spawn`].
    pub fn spawn_with<F>(&self, prio: Priority, f: F)
    where
        F: FnOnce(&Scope<'_>) + Send + 'static,
    {
        self.host.spawn_job_with(Job::new(f), prio);
    }

    /// Spawn an already-built [`Job`] with an acquisition priority.
    ///
    /// Equivalent to [`Scope::spawn_with`] but forwards a `Job` that
    /// already exists — the instance layer (`crate::instance`) uses this
    /// to forward wrapped jobs without re-wrapping.
    pub fn spawn_boxed_with(&self, job: Job, prio: Priority) {
        self.host.spawn_job_with(job, prio);
    }

    /// Number of worker threads in the executor this scope belongs to.
    pub fn num_threads(&self) -> usize {
        self.host.num_threads()
    }

    /// Index of the current worker thread, if the calling thread is one.
    pub fn worker_index(&self) -> Option<usize> {
        self.host.worker_index()
    }
}

thread_local! {
    /// Set while a worker thread of some pool is running: points at that
    /// worker's local context.
    static LOCAL: Cell<*const LocalCtx> = const { Cell::new(std::ptr::null()) };
}

/// Per-worker context, reachable through the thread-local above.
struct LocalCtx {
    deque: Worker<Job>,
    /// Second, high-priority deque: popped before `deque`, stolen before
    /// victims' normal lanes. Empty for FIFO-mode workloads.
    hot: Worker<Job>,
    index: usize,
    /// Identity of the owning pool, to guard against cross-pool spawns.
    pool_id: *const PoolState,
}

fn current_worker_index(state: &PoolState) -> Option<usize> {
    LOCAL.with(|l| {
        let p = l.get();
        if p.is_null() {
            return None;
        }
        // SAFETY: a non-null LOCAL points at the `LocalCtx` on the current
        // worker's stack frame in `worker_main`, which outlives every job
        // the worker runs and is reset to null before the frame unwinds.
        let ctx = unsafe { &*p };
        if std::ptr::eq(ctx.pool_id, state) {
            Some(ctx.index)
        } else {
            None
        }
    })
}

impl PoolState {
    fn spawn_job(&self, job: Job) {
        self.spawn_job_with(job, Priority::Normal);
    }

    fn spawn_job_with(&self, job: Job, prio: Priority) {
        self.pending.increment();
        // Count the job *before* it becomes stealable: a worker that grabs
        // it the instant it lands must not decrement `queued` below zero.
        // SeqCst: the increment must be globally ordered against a parking
        // worker's `prepare_sleep`/re-check pair — either the sleeper sees
        // the count, or the notify below sees the sleeper (epoch protocol).
        self.queued.fetch_add(1, Ordering::SeqCst);
        let mut job = Some(job);
        LOCAL.with(|l| {
            let p = l.get();
            if p.is_null() {
                return;
            }
            // SAFETY: as in `current_worker_index` — a non-null LOCAL points
            // at the live `LocalCtx` of the current worker's `worker_main`
            // frame, which strictly outlives this call.
            let ctx = unsafe { &*p };
            if !std::ptr::eq(ctx.pool_id, self) {
                return;
            }
            WorkerMetrics::bump(&self.metrics[ctx.index].spawned);
            let job = job.take().expect("job present");
            match prio {
                Priority::High => ctx.hot.push(job),
                Priority::Normal => ctx.deque.push(job),
            }
        });
        if let Some(job) = job {
            // Submitting thread is not a worker of this pool: go through
            // the shared lock-free injector (lane chosen by `prio`).
            self.injector.push(job, prio);
        }
        // One job became visible: wake one worker, not the whole pool. The
        // woken worker escalates (see `worker_main`) while work remains.
        self.parker.notify_one();
    }

    /// True if any queue in the system visibly holds work. O(1): a single
    /// counter load instead of an O(workers) stealer sweep.
    fn has_visible_work(&self) -> bool {
        self.queued.load(Ordering::SeqCst) > 0
    }

    /// Account for a job leaving the queues. Returns how many remain.
    fn job_acquired(&self) -> u64 {
        // ord: Relaxed — the counter is a wakeup heuristic here: the worker
        // already holds the job (synchronized by the deque/injector
        // protocols), and parking correctness relies on the SeqCst
        // increment in `spawn_job`, not on this decrement.
        self.queued.fetch_sub(1, Ordering::Relaxed) - 1
    }
}

impl SpawnHost for PoolState {
    fn spawn_job(&self, job: Job) {
        PoolState::spawn_job(self, job);
    }

    fn spawn_job_with(&self, job: Job, prio: Priority) {
        PoolState::spawn_job_with(self, job, prio);
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn worker_index(&self) -> Option<usize> {
        current_worker_index(self)
    }
}

/// A persistent work-stealing pool.
pub struct Pool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.state.threads)
            .finish()
    }
}

impl Pool {
    /// Create a pool with the given configuration; workers start immediately
    /// and park until work arrives.
    pub fn new(config: PoolConfig) -> Self {
        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = deque::deque::<Job>();
            let (hw, hs) = deque::deque::<Job>();
            workers.push((w, hw));
            stealers.push(LaneStealers { hot: hs, normal: s });
        }
        let metrics = (0..threads)
            .map(|_| CachePadded(WorkerMetrics::default()))
            .collect();
        let state = Arc::new(PoolState {
            stealers,
            injector: PrioInjector::new(),
            queued: CachePadded(AtomicU64::new(0)),
            parker: Parker::new(),
            pending: CountLatch::new(),
            metrics,
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            threads,
            steal_rounds: config.steal_rounds.max(1),
        });
        let mut handles = Vec::with_capacity(threads);
        for (index, (w, hw)) in workers.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let seed = config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ft-steal-worker-{index}"))
                    .spawn(move || worker_main(state, w, hw, index, seed))
                    .expect("failed to spawn worker thread"),
            );
        }
        Pool { state, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.state.threads
    }

    /// Run `f` (which spawns the root work) and block until the pool
    /// quiesces — every transitively spawned job has finished.
    ///
    /// If any job panicked, the first panic payload is re-raised here.
    pub fn run_until_complete<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>),
    {
        let scope = Scope::for_host(&*self.state);
        // Sentinel item: guarantees the latch "starts" even if `f` spawns
        // nothing, and holds the count above zero while `f` is still
        // submitting.
        self.state.pending.increment();
        f(&scope);
        self.state.pending.decrement();
        self.state.pending.wait();
        if let Some(payload) = self.state.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Spawn a single fire-and-forget job from outside any run. Prefer
    /// [`Pool::run_until_complete`] for bounded work.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>) + Send + 'static,
    {
        let scope = Scope::for_host(&*self.state);
        scope.spawn(f);
    }

    /// Aggregate the per-worker metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state
            .metrics
            .iter()
            .map(|m| m.snapshot())
            .fold(MetricsSnapshot::default(), |a, b| a.merge(&b))
    }

    /// Per-worker metric snapshots (index = worker id).
    pub fn metrics_per_worker(&self) -> Vec<MetricsSnapshot> {
        self.state.metrics.iter().map(|m| m.snapshot()).collect()
    }

    /// Zero all metrics (between experiment repetitions).
    pub fn reset_metrics(&self) {
        for m in &self.state.metrics {
            m.reset();
        }
    }
}

impl Executor for Pool {
    fn execute_job(&self, root: Job) {
        self.run_until_complete(|scope| root.run(scope));
    }

    fn num_threads(&self) -> usize {
        self.state.threads
    }

    fn submit_instance(&self, root: Job, on_quiesce: Option<QuiesceHook>) -> InstanceHandle {
        let (job, handle) = crate::instance::instance_root(root, on_quiesce);
        // The wrapped root goes through the normal spawn path (injector
        // from a non-worker thread), so workers pick it up like any job;
        // only the completion accounting differs.
        self.state.spawn_job(job);
        handle
    }

    fn queued_jobs(&self) -> u64 {
        self.state.queued.load(Ordering::SeqCst)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // ord: Release — pairs with the workers' Acquire loads of
        // `shutdown` so everything before the drop is visible to them.
        self.state.shutdown.store(true, Ordering::Release);
        // Wake everyone until they have all exited.
        for h in self.handles.drain(..) {
            while !h.is_finished() {
                self.state.parker.notify();
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }
}

fn worker_main(
    state: Arc<PoolState>,
    deque: Worker<Job>,
    hot: Worker<Job>,
    index: usize,
    seed: u64,
) {
    let ctx = LocalCtx {
        deque,
        hot,
        index,
        pool_id: Arc::as_ptr(&state),
    };
    LOCAL.with(|l| l.set(&ctx as *const LocalCtx));
    let mut rng = XorShift64Star::new(seed);
    let scope = Scope::for_host(&*state);
    let metrics = &state.metrics[index];

    loop {
        if let Some(job) = find_job(&state, &ctx, index, &mut rng) {
            // Wake escalation: this worker got a job; if more are queued
            // and someone is parked, pass the wakeup along. Combined with
            // `notify_one` in `spawn_job`, a burst of B jobs wakes at most
            // B workers, one at a time, instead of the whole pool per job.
            if state.job_acquired() > 0 && state.parker.sleepers() > 0 {
                state.parker.notify_one();
            }
            WorkerMetrics::bump(&metrics.executed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.run(&scope);
            }));
            // Store the payload *before* decrementing: the waiter in
            // `run_until_complete` reads the panic slot as soon as the
            // pending count hits zero.
            if let Err(payload) = result {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.decrement();
            continue;
        }
        // ord: Acquire — pairs with the Release store in `Pool::drop`.
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Nothing found after a full sweep: two-phase park.
        let token = state.parker.prepare_sleep();
        // ord: Acquire — pairs with the Release store in `Pool::drop`.
        if state.has_visible_work() || state.shutdown.load(Ordering::Acquire) {
            state.parker.cancel_sleep();
            continue;
        }
        WorkerMetrics::bump(&metrics.sleeps);
        state.parker.sleep(token);
    }
    LOCAL.with(|l| l.set(std::ptr::null()));
}

/// One attempt to obtain a job, hot work first at every tier: own hot
/// deque, injector hot lane, own normal deque, injector normal batch, then
/// `steal_rounds` sweeps over random victims (each victim's hot lane
/// before its normal one). The only FIFO-mode overhead of the priority
/// tiers is one empty `pop` and one hint load per acquisition.
fn find_job(
    state: &PoolState,
    ctx: &LocalCtx,
    index: usize,
    rng: &mut XorShift64Star,
) -> Option<Job> {
    if let Some(job) = ctx.hot.pop() {
        return Some(job);
    }
    if let Some(job) = steal_injector_hot(state, index) {
        return Some(job);
    }
    if let Some(job) = ctx.deque.pop() {
        return Some(job);
    }
    if let Some(job) = pop_injector(state, ctx, index) {
        return Some(job);
    }
    let n = state.threads;
    for _ in 0..state.steal_rounds {
        // Random starting victim, then sweep all others once.
        let start = rng.next_below(n.max(1));
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == index {
                continue;
            }
            let lanes = &state.stealers[victim];
            for stealer in [&lanes.hot, &lanes.normal] {
                loop {
                    match stealer.steal() {
                        Steal::Success(job) => {
                            WorkerMetrics::bump(&state.metrics[index].steals);
                            return Some(job);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
        }
        if let Some(job) = pop_injector(state, ctx, index) {
            return Some(job);
        }
        // ord: Acquire — pairs with the Release store in `Pool::drop`.
        if state.shutdown.load(Ordering::Acquire) {
            return None;
        }
        std::hint::spin_loop();
    }
    WorkerMetrics::bump(&state.metrics[index].failed_steals);
    None
}

/// Steal one job from the injector's hot lane (hint-gated: FIFO-mode cost
/// is a single atomic load).
fn steal_injector_hot(state: &PoolState, index: usize) -> Option<Job> {
    let job = state.injector.steal_hot()?;
    WorkerMetrics::bump(&state.metrics[index].steals);
    WorkerMetrics::bump(&state.metrics[index].injector_steals);
    Some(job)
}

/// Take from the lock-free injector: one hot job if any, else a
/// batch-steal from the normal lane into this worker's own deque,
/// returning the oldest stolen job. Surplus jobs stay stealable by other
/// workers (and remain counted in `queued`).
fn pop_injector(state: &PoolState, ctx: &LocalCtx, index: usize) -> Option<Job> {
    if let Some(job) = steal_injector_hot(state, index) {
        return Some(job);
    }
    let job = state.injector.steal_batch_and_pop_normal(&ctx.deque)?;
    WorkerMetrics::bump(&state.metrics[index].steals);
    WorkerMetrics::bump(&state.metrics[index].injector_steals);
    Some(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::AtomicUsize;

    #[test]
    fn runs_simple_jobs() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        let counter = Arc::new(AtomicUsize::new(0));
        pool.run_until_complete(|scope| {
            for _ in 0..1000 {
                let c = Arc::clone(&counter);
                scope.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn recursive_spawning_quiesces() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        let counter = Arc::new(AtomicUsize::new(0));
        fn fanout(scope: &Scope<'_>, depth: usize, counter: Arc<AtomicUsize>) {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                for _ in 0..2 {
                    let c = Arc::clone(&counter);
                    scope.spawn(move |s| fanout(s, depth - 1, c));
                }
            }
        }
        let c = Arc::clone(&counter);
        pool.run_until_complete(|scope| {
            scope.spawn(move |s| fanout(s, 10, c));
        });
        // 2^11 - 1 nodes in a binary tree of depth 10.
        assert_eq!(counter.load(Ordering::Relaxed), 2047);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(PoolConfig::with_threads(1));
        let counter = Arc::new(AtomicUsize::new(0));
        pool.run_until_complete(|scope| {
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                scope.spawn(move |s| {
                    let c2 = Arc::clone(&c);
                    s.spawn(move |_| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn multiple_runs_reuse_pool() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        for round in 1..=5 {
            let counter = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&counter);
            pool.run_until_complete(|scope| {
                for _ in 0..round * 10 {
                    let c = Arc::clone(&c);
                    scope.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn empty_run_returns() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        pool.run_until_complete(|_| {});
    }

    #[test]
    fn job_panic_propagates() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_until_complete(|scope| {
                scope.spawn(|_| panic!("boom"));
                for _ in 0..10 {
                    scope.spawn(|_| {});
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.run_until_complete(|scope| {
            scope.spawn(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn high_priority_jobs_run_first_on_single_worker() {
        // On one worker the acquisition order is deterministic: after the
        // spawning job finishes, the worker drains its hot deque before
        // its normal deque, so every High job runs before any Normal job.
        let pool = Pool::new(PoolConfig::with_threads(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        pool.run_until_complete(|scope| {
            scope.spawn(move |s| {
                for i in 0..8usize {
                    let o = Arc::clone(&o);
                    s.spawn(move |_| o.lock().push(("normal", i)));
                }
                for i in 0..8usize {
                    let o = Arc::clone(&o);
                    s.spawn_with(Priority::High, move |_| o.lock().push(("hot", i)));
                }
            });
        });
        let got = order.lock().clone();
        assert_eq!(got.len(), 16);
        assert!(
            got[..8].iter().all(|&(lane, _)| lane == "hot"),
            "hot jobs must all run before normal ones, got {got:?}"
        );
    }

    #[test]
    fn high_priority_external_submissions_complete() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        let counter = Arc::new(AtomicUsize::new(0));
        pool.run_until_complete(|scope| {
            for i in 0..500 {
                let c = Arc::clone(&counter);
                let prio = if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                scope.spawn_with(prio, move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_index_available_inside_jobs() {
        let pool = Pool::new(PoolConfig::with_threads(3));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        pool.run_until_complete(|scope| {
            assert_eq!(scope.worker_index(), None, "submitter is not a worker");
            for _ in 0..64 {
                let seen = Arc::clone(&s2);
                scope.spawn(move |s| {
                    let idx = s.worker_index().expect("job runs on a worker");
                    assert!(idx < s.num_threads());
                    seen.lock().push(idx);
                });
            }
        });
        assert_eq!(seen.lock().len(), 64);
    }

    #[test]
    fn metrics_account_all_jobs() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        pool.reset_metrics();
        pool.run_until_complete(|scope| {
            for _ in 0..500 {
                scope.spawn(|s| {
                    s.spawn(|_| {});
                });
            }
        });
        let m = pool.metrics();
        assert_eq!(m.executed, 1000);
        // The 500 inner jobs were spawned from workers.
        assert_eq!(m.spawned, 500);
    }

    #[test]
    fn workload_with_compute_finishes() {
        // A somewhat realistic irregular workload: jobs of varying size.
        let pool = Pool::new(PoolConfig::default());
        let total = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&total);
        pool.run_until_complete(|scope| {
            for i in 0..200usize {
                let t = Arc::clone(&t);
                scope.spawn(move |_| {
                    let mut acc = 0usize;
                    for k in 0..(i % 17 + 1) * 1000 {
                        acc = acc.wrapping_add(k).rotate_left(3);
                    }
                    std::hint::black_box(acc);
                    t.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }
}
