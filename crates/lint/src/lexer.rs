//! A minimal line-oriented Rust lexer.
//!
//! The linter does not need a parse tree — every rule in `docs/LINTS.md` is
//! expressible over *lines* once comments and literal contents are masked
//! out. This module produces, for each source line, the line's code with
//! comment text and string/char-literal contents replaced by spaces, plus
//! the comment text that appeared on the line. Cross-line state (nested
//! block comments, multiline and raw strings) is tracked so a `SAFETY:`
//! inside a string can never satisfy rule L1 and an `unsafe` inside a
//! comment can never trip it.

/// One lexed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and literal contents masked to
    /// spaces (quote characters are kept so the column count is stable).
    pub code: String,
    /// Concatenated text of every comment on the line (line, block, or
    /// doc), without the comment markers.
    pub comment: String,
}

impl Line {
    /// True when the line carries no code (blank, or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// True when the line is only an attribute (outer or inner), which the
    /// block-above walks skip over.
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        (t.starts_with("#[") || t.starts_with("#![")) && t.ends_with(']')
    }

    /// True when the line carries a comment but no code.
    pub fn is_comment_only(&self) -> bool {
        self.is_code_blank() && !self.comment.trim().is_empty()
    }
}

/// Lexer mode carried across lines.
enum Mode {
    Code,
    /// Nested block comment depth.
    Block(u32),
    /// Ordinary (possibly multiline) string literal.
    Str,
    /// Raw string with this many `#` delimiters.
    RawStr(u32),
}

/// True when `c` can be part of an identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `code` contain `word` at an identifier boundary?
pub fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = code[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = code[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Lex a whole file into per-line code/comment splits.
pub fn lex(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in src.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        line.comment.push(' ');
                        i += 2;
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        line.comment.push(' ');
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        i += 1;
                        mode = Mode::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let n = hashes as usize;
                        let closes = (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closes {
                            line.code.push('"');
                            for _ in 0..n {
                                line.code.push('#');
                            }
                            i += 1 + n;
                            mode = Mode::Code;
                            continue;
                        }
                    }
                    line.code.push(' ');
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: strip the marker run (`//`, `///`,
                        // `//!`) and keep the text.
                        let mut j = i + 2;
                        while chars.get(j) == Some(&'/') || chars.get(j) == Some(&'!') {
                            j += 1;
                        }
                        line.comment.extend(&chars[j..]);
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        i += 2;
                        if chars.get(i) == Some(&'*') || chars.get(i) == Some(&'!') {
                            i += 1; // doc block comment marker
                        }
                        mode = Mode::Block(1);
                    } else if c == '"' {
                        // Raw string? Look back for `r`/`br` + hashes.
                        let tail_hashes = line.code.chars().rev().take_while(|&h| h == '#').count();
                        let before: String =
                            line.code.chars().rev().skip(tail_hashes).take(3).collect();
                        let mut b = before.chars();
                        let is_raw = match b.next() {
                            Some('r') => b.next().is_none_or(|p| !is_ident(p) || p == 'b'),
                            _ => false,
                        };
                        line.code.push('"');
                        i += 1;
                        mode = if is_raw {
                            Mode::RawStr(tail_hashes as u32)
                        } else {
                            Mode::Str
                        };
                    } else if c == '\'' {
                        // Char literal vs lifetime. `'\...'` and `'x'` are
                        // literals; `'ident` (no close quote right after)
                        // is a lifetime or loop label.
                        if chars.get(i + 1) == Some(&'\\') {
                            line.code.push('\'');
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                line.code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() {
                                line.code.push('\'');
                                i += 1;
                            }
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        if let Mode::Block(_) = mode {
            // keep collecting comment text on the next line
        }
        out.push(line);
    }
    out
}

/// Index of the first line of the file's trailing test module, if any.
///
/// Heuristic that matches this workspace's layout: a `#[cfg(...)]`
/// attribute whose argument mentions `test`, followed within a few lines by
/// a `mod` item, starts test code that runs to the end of the file. Rules
/// L1–L5 skip everything at or after this line.
pub fn test_region_start(lines: &[Line]) -> Option<usize> {
    for (idx, line) in lines.iter().enumerate() {
        let t = line.code.trim();
        if t.starts_with("#[cfg(") && t.contains("test") {
            for follow in lines.iter().skip(idx + 1).take(4) {
                let ft = follow.code.trim();
                if ft.starts_with("mod ") || ft.starts_with("pub mod ") {
                    return Some(idx);
                }
                if !follow.is_code_blank() && !follow.is_attr_only() {
                    break;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments() {
        let l = lex("let x = 1; // unsafe here\n");
        assert!(!has_word(&l[0].code, "unsafe"));
        assert!(l[0].comment.contains("unsafe here"));
    }

    #[test]
    fn masks_strings_and_chars() {
        let l = lex("let s = \"unsafe Ordering::Relaxed\"; let c = 'u';");
        assert!(!has_word(&l[0].code, "unsafe"));
        assert!(!l[0].code.contains("Relaxed"));
    }

    #[test]
    fn raw_strings_mask_until_matching_hashes() {
        let src = "let s = r#\"unsafe \" still unsafe\"#; let x = unsafe { 1 };";
        let l = lex(src);
        // The real unsafe after the raw string must survive.
        assert!(has_word(&l[0].code, "unsafe"));
        assert_eq!(l[0].code.matches("unsafe").count(), 1);
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let l = lex("/* a /* b */ unsafe */ let y = 2;\ncode();");
        assert!(!has_word(&l[0].code, "unsafe"));
        assert!(l[0].code.contains("let y"));
        assert!(l[1].code.contains("code()"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { g::<'_>(x); }");
        assert!(l[0].code.contains("&'a str"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
        assert!(has_word("(unsafe)", "unsafe"));
    }

    #[test]
    fn finds_test_region() {
        let l = lex("fn a() {}\n#[cfg(all(test, not(loom)))]\nmod tests {\n}\n");
        assert_eq!(test_region_start(&l), Some(1));
        let l = lex("fn a() {}\n#[cfg(not(loom))]\nmod imp {\n}\n");
        assert_eq!(test_region_start(&l), None);
    }
}
