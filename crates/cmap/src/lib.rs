//! `ft-cmap` — a sharded concurrent hash map built for the NABBIT
//! fault-tolerant task-graph scheduler.
//!
//! The SC14 paper's runtime keeps two concurrent maps:
//!
//! * the **task map**: key (`i64`) → pointer to the current incarnation of a
//!   task descriptor, accessed with `InsertTaskIfAbsent` / `GetTask` /
//!   `ReplaceTask` (Figures 2–3);
//! * the **recovery table `R`**: key → most recent *life number* for which a
//!   recovery has been initiated, accessed with `InsertRecord` / `GetRecord`
//!   plus an atomic compare-and-swap on the stored life (Figure 3,
//!   `IsRecovering`).
//!
//! [`ShardedMap`] provides exactly those operations over `S` shards (power
//! of two), each an open-addressing table with a **seqlock read path**:
//! `get`/`contains` are lock-free optimistic reads (probe the atomically
//! published table, validate a per-shard sequence counter, retry only on
//! writer interference), while writers serialize on a per-shard mutex and
//! bump the sequence around mutation. The map stores values by value; the
//! scheduler stores `Arc<TaskDesc>`, matching the paper's "the hash map
//! stores the pointers to the tasks and not the tasks themselves" — so a
//! validated read is one probe plus one `Arc` clone, no lock traffic.
//!
//! [`LockedMap`] preserves the previous `RwLock`-striped implementation as
//! the ablation baseline the lock-free read path is measured against.
//!
//! A dedicated [`ShardedMap::update_cas`] implements the recovery table's
//! compare-and-swap on the stored value without the caller holding any lock
//! across the comparison.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod locked;
pub mod map;

pub use locked::LockedMap;
pub use map::{MapStats, ShardedMap};
