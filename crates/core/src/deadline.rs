//! Deadline accounting for priority-scheduling experiments.
//!
//! The PR-6 experiments compare FIFO and priority pop orders by the
//! **deadline-miss rate** of a random DAG's hard tasks under fault
//! injection. The scheduler itself has no notion of deadlines; it only
//! reports, per task, *when* the first incarnation completed. This module
//! is that probe: a [`DeadlineMonitor`] handed to the engine via
//! [`SchedOpts`](crate::scheduler::SchedOpts) records a
//! [`CompletionStamp`] the moment a task's `Completed` event is emitted.
//!
//! Two clocks are recorded per completion:
//!
//! * `nanos` — wall-clock nanoseconds since the monitor was created.
//!   Meaningful on the real pool; used by `bench_pr6` to decide whether a
//!   hard task met its deadline.
//! * `seq` — the task's position in the global completion order (0-based).
//!   Unlike wall time this is **deterministic** on the seeded `DetPool`,
//!   so the campaign tests can assert that breaking the priority function
//!   measurably regresses hard-task completion positions, replayable by
//!   seed.
//!
//! Only the *first* completion of a key is recorded (`insert_if_absent`):
//! recovery may complete later incarnations of the same key, but the
//! deadline question is "when did this task's result first become
//! available to consumers".

use crate::graph::Key;
use ft_cmap::ShardedMap;
use ft_sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// When one task first completed, on both clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionStamp {
    /// Nanoseconds from [`DeadlineMonitor`] creation to first completion.
    pub nanos: u64,
    /// 0-based position of this completion in the run's completion order.
    pub seq: u64,
}

/// Records first-completion times for every task of one run.
///
/// Create one per run, pass it to the scheduler through
/// [`SchedOpts`](crate::scheduler::SchedOpts), and query it after the run
/// returns (queries during the run are racy but safe).
#[derive(Debug)]
pub struct DeadlineMonitor {
    start: Instant,
    /// Next completion sequence number.
    seq: AtomicU64,
    completions: ShardedMap<CompletionStamp>,
}

impl Default for DeadlineMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl DeadlineMonitor {
    /// Start the clock now.
    pub fn new() -> Self {
        DeadlineMonitor {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            completions: ShardedMap::new(),
        }
    }

    /// Record `key`'s completion. First call per key wins; later calls
    /// (recovered incarnations completing again) are no-ops but still
    /// consume a sequence number, keeping `seq` a true completion-order
    /// position.
    pub fn record(&self, key: Key) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        // SeqCst: the counter is tiny traffic (once per completion) and a
        // total order keeps `seq` an honest global completion index.
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.completions
            .insert_if_absent(key, || CompletionStamp { nanos, seq });
    }

    /// First-completion stamp of `key`, if it completed.
    pub fn stamp(&self, key: Key) -> Option<CompletionStamp> {
        self.completions.get(key)
    }

    /// Number of distinct tasks that completed.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True if nothing completed yet.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// All `(key, stamp)` pairs, unordered.
    pub fn entries(&self) -> Vec<(Key, CompletionStamp)> {
        self.completions.entries()
    }

    /// Mean completion-order position of `keys` (ignoring keys that never
    /// completed). This is the deterministic campaign metric: under the
    /// priority pop order, hard tasks complete earlier in the order, so
    /// their mean position drops.
    pub fn mean_seq(&self, keys: &[Key]) -> f64 {
        let seqs: Vec<u64> = keys
            .iter()
            .filter_map(|&k| self.stamp(k))
            .map(|s| s.seq)
            .collect();
        if seqs.is_empty() {
            return f64::NAN;
        }
        seqs.iter().sum::<u64>() as f64 / seqs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_completion_only() {
        let m = DeadlineMonitor::new();
        m.record(7);
        let first = m.stamp(7).unwrap();
        assert_eq!(first.seq, 0);
        m.record(7);
        assert_eq!(m.stamp(7).unwrap(), first, "first completion wins");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn seq_is_completion_order() {
        let m = DeadlineMonitor::new();
        for k in [3, 1, 4, 1, 5] {
            m.record(k);
        }
        assert_eq!(m.stamp(3).unwrap().seq, 0);
        assert_eq!(m.stamp(1).unwrap().seq, 1);
        assert_eq!(m.stamp(4).unwrap().seq, 2);
        assert_eq!(m.stamp(5).unwrap().seq, 4, "duplicate burned seq 3");
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn mean_seq_over_subset() {
        let m = DeadlineMonitor::new();
        for k in 0..10 {
            m.record(k);
        }
        assert_eq!(m.mean_seq(&[0, 9]), 4.5);
        assert!(m.mean_seq(&[999]).is_nan(), "never-completed keys ignored");
        assert_eq!(m.mean_seq(&[2, 999]), 2.0);
    }

    #[test]
    fn nanos_monotone_in_seq() {
        let m = DeadlineMonitor::new();
        m.record(1);
        std::thread::sleep(std::time::Duration::from_millis(1));
        m.record(2);
        let (a, b) = (m.stamp(1).unwrap(), m.stamp(2).unwrap());
        assert!(a.nanos < b.nanos);
        assert!(a.seq < b.seq);
    }
}
