//! Execution statistics for a task-graph run.
//!
//! The experiments of Section VI report recovery overheads and re-executed
//! task counts ("we verify the fault injection by ensuring that the number
//! of tasks recovered matches the loss of work […] intended"). These
//! counters make that verification possible: every successful compute,
//! re-execution, recovery initiation, reset, and injected fault is counted.
//!
//! Cold-path counters (recoveries, faults, resets) are process-wide
//! atomics: a compute call dwarfs one `fetch_add`. The per-notification
//! counters fire on *every graph edge*, so they are [`ShardedCounter`]s —
//! cache-padded per-worker lanes selected by the worker index the engine
//! threads through, summed only at snapshot time — and never contend
//! cross-worker.

use ft_cmap::LockedMap;
use ft_steal::metrics::CachePadded;
use ft_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of lanes in a [`ShardedCounter`]. Workers beyond this fold onto
/// existing lanes (still correct, marginally more contended).
const COUNTER_LANES: usize = 16;

/// A relaxed event counter split into cache-padded per-worker lanes.
///
/// `add` lands on the calling worker's lane, so two workers bumping the
/// same logical counter never bounce a cache line between them; `load`
/// sums the lanes (called once per run, after quiescence).
pub struct ShardedCounter {
    lanes: Box<[CachePadded<AtomicU64>]>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        ShardedCounter {
            lanes: (0..COUNTER_LANES)
                .map(|_| CachePadded(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Increment the lane of `worker` (threads outside the pool share the
    /// last lane).
    #[inline]
    pub fn add(&self, worker: Option<usize>) {
        let lane = worker.map_or(COUNTER_LANES - 1, |w| w % COUNTER_LANES);
        // ord: Relaxed — per-lane statistics counter, summed at quiescence.
        self.lanes[lane].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all lanes.
    pub fn load(&self) -> u64 {
        // ord: Relaxed — statistics read at quiescence.
        self.lanes.iter().map(|l| l.0.load(Ordering::Relaxed)).sum()
    }
}

/// Mutable counters owned by one scheduler run.
#[derive(Default)]
pub struct RunMetrics {
    /// Successful executions of user compute functions (Σ N(A)).
    pub computes: AtomicU64,
    /// Compute attempts that returned a fault.
    pub compute_faults: AtomicU64,
    /// Recoveries actually performed (`RecoverTask` bodies entered).
    pub recoveries: AtomicU64,
    /// `RecoverTaskOnce` calls suppressed because the incarnation was
    /// already being recovered (Guarantee 1 at work).
    pub recoveries_suppressed: AtomicU64,
    /// `ResetNode` invocations (task re-explored after an input fault).
    pub resets: AtomicU64,
    /// Notifications delivered (`NotifyOnce` bit-unset successes).
    /// Per-edge hot path: sharded by worker.
    pub notifications: ShardedCounter,
    /// Duplicate notifications absorbed by the bit vector (bit already 0).
    /// Per-edge hot path: sharded by worker.
    pub duplicate_notifications: ShardedCounter,
    /// Faults injected by the plan.
    pub injected: AtomicU64,
    /// Evicted-version reads (each starts a producer chain re-execution).
    pub overwrite_faults: AtomicU64,
    /// Per-task execution counts: N(A) of Section V. A [`LockedMap`]
    /// rather than the seqlock `ShardedMap`: this map is write-hot (one
    /// `update_cas` per compute) and only read after quiescence, so the
    /// lock-free read path buys nothing while its copy-on-write updates
    /// would cost an allocation per compute.
    pub exec_counts: LockedMap<u64>,
}

impl RunMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        RunMetrics {
            exec_counts: LockedMap::with_shards(64),
            ..Default::default()
        }
    }

    /// Record one successful compute of `key`; returns the execution count
    /// N(key) *after* this execution.
    pub fn record_compute(&self, key: i64) -> u64 {
        // ord: Relaxed — statistics counter.
        self.computes.fetch_add(1, Ordering::Relaxed);
        self.exec_counts.update_cas(key, |cur| {
            let n = cur.copied().unwrap_or(0) + 1;
            (Some(n), n)
        })
    }

    /// Snapshot into a [`RunReport`] (without timing fields).
    pub fn snapshot(&self) -> RunReport {
        let exec: Vec<(i64, u64)> = self.exec_counts.entries();
        let distinct = exec.len() as u64;
        let total: u64 = exec.iter().map(|(_, n)| n).sum();
        let max_n = exec.iter().map(|&(_, n)| n).max().unwrap_or(0);
        RunReport {
            // ord: Relaxed throughout — snapshot of statistics counters
            // taken after the run quiesces; no cross-field ordering is
            // implied.
            computes: self.computes.load(Ordering::Relaxed),
            compute_faults: self.compute_faults.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            recoveries_suppressed: self.recoveries_suppressed.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            notifications: self.notifications.load(),
            duplicate_notifications: self.duplicate_notifications.load(),
            injected: self.injected.load(Ordering::Relaxed),
            overwrite_faults: self.overwrite_faults.load(Ordering::Relaxed),
            distinct_tasks_executed: distinct,
            re_executions: total - distinct,
            max_executions_one_task: max_n,
            sink_completed: false,
            elapsed: Duration::ZERO,
        }
    }
}

/// Immutable summary of one run, consumed by tests and the experiment
/// harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Successful compute executions (Σ N(A)).
    pub computes: u64,
    /// Compute attempts that observed a fault.
    pub compute_faults: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// Recovery attempts suppressed by the recovery table.
    pub recoveries_suppressed: u64,
    /// `ResetNode` invocations.
    pub resets: u64,
    /// Join-counter decrements delivered.
    pub notifications: u64,
    /// Duplicate notifications absorbed by bit vectors.
    pub duplicate_notifications: u64,
    /// Faults injected.
    pub injected: u64,
    /// Evicted-version faults observed.
    pub overwrite_faults: u64,
    /// Number of distinct tasks that executed at least once.
    pub distinct_tasks_executed: u64,
    /// Σ max(0, N(A) − 1): the paper's "number of re-executed tasks".
    pub re_executions: u64,
    /// max_A N(A) — the `N` of Theorem 2.
    pub max_executions_one_task: u64,
    /// Whether the sink task reached Completed status.
    pub sink_completed: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunReport {
    /// Human-oriented one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "computes={} (distinct={}, re-exec={}), recoveries={} (+{} suppressed), \
             resets={}, faults: injected={} observed={} overwrites={}, sink={} in {:?}",
            self.computes,
            self.distinct_tasks_executed,
            self.re_executions,
            self.recoveries,
            self.recoveries_suppressed,
            self.resets,
            self.injected,
            self.compute_faults,
            self.overwrite_faults,
            self.sink_completed,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_compute_counts_per_task() {
        let m = RunMetrics::new();
        assert_eq!(m.record_compute(1), 1);
        assert_eq!(m.record_compute(1), 2);
        assert_eq!(m.record_compute(2), 1);
        let r = m.snapshot();
        assert_eq!(r.computes, 3);
        assert_eq!(r.distinct_tasks_executed, 2);
        assert_eq!(r.re_executions, 1);
        assert_eq!(r.max_executions_one_task, 2);
    }

    #[test]
    fn sharded_counter_sums_lanes() {
        let c = ShardedCounter::new();
        c.add(Some(0));
        c.add(Some(1));
        c.add(Some(COUNTER_LANES + 1)); // folds onto lane 1
        c.add(None); // non-pool thread lane
        assert_eq!(c.load(), 4);
    }

    #[test]
    fn sharded_counter_concurrent_adds() {
        let c = std::sync::Arc::new(ShardedCounter::new());
        std::thread::scope(|s| {
            for w in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(Some(w));
                    }
                });
            }
        });
        assert_eq!(c.load(), 8000);
    }

    #[test]
    fn empty_metrics_snapshot() {
        let m = RunMetrics::new();
        let r = m.snapshot();
        assert_eq!(r.computes, 0);
        assert_eq!(r.re_executions, 0);
        assert_eq!(r.max_executions_one_task, 0);
        assert!(!r.sink_completed);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let m = RunMetrics::new();
        m.record_compute(7);
        m.injected.store(3, Ordering::Relaxed);
        let mut r = m.snapshot();
        r.sink_completed = true;
        let s = r.summary();
        assert!(s.contains("computes=1"));
        assert!(s.contains("injected=3"));
        assert!(s.contains("sink=true"));
    }
}
