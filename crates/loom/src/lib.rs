//! Offline shim for the `loom` crate.
//!
//! Real loom exhaustively model-checks every interleaving of a bounded
//! concurrent program. It cannot be vendored here (the workspace builds
//! with no network and no crates.io mirror), so this shim keeps the same
//! *API* — `loom::model`, `loom::thread`, `loom::sync::atomic` — but
//! implements exploration as **seeded stress testing**: every atomic
//! operation may inject an OS-level `yield_now`, driven by a per-thread
//! RNG reseeded for each of the `model`'s iterations. Each iteration
//! therefore perturbs the schedule differently, and a failure reproduces
//! from `LOOM_SEED`.
//!
//! This is strictly weaker than loom's exhaustive search (it samples
//! interleavings instead of enumerating them, and models only `SeqCst`-ish
//! visibility, not weak-memory reorderings), but it runs the *same test
//! bodies* unchanged, so swapping in real loom later is a Cargo.toml-only
//! change. Iteration count: `LOOM_MAX_ITERS` (default 300).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

static MODEL_SEED: AtomicU64 = AtomicU64::new(0);
static THREAD_SALT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static YIELD_RNG: Cell<u64> = const { Cell::new(0) };
}

fn rng_next() -> u64 {
    YIELD_RNG.with(|c| {
        let mut x = c.get();
        if x == 0 {
            // First use on this thread within some iteration: derive from
            // the model seed and a per-thread salt.
            let salt = THREAD_SALT.fetch_add(1, StdOrdering::Relaxed);
            x = MODEL_SEED
                .load(StdOrdering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        x
    })
}

/// Called from every shimmed atomic op: sometimes yields the OS slice so
/// different iterations see different interleavings.
fn maybe_yield() {
    let r = rng_next();
    if r % 13 == 0 {
        std::thread::yield_now();
    } else if r % 29 == 0 {
        std::hint::spin_loop();
    }
}

/// Run `f` under many differently-perturbed schedules.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let base: u64 = std::env::var("LOOM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE);
    for i in 0..iters {
        let seed = base.wrapping_add(i.wrapping_mul(0x2545_F491_4F6C_DD1D));
        MODEL_SEED.store(seed, StdOrdering::Relaxed);
        YIELD_RNG.with(|c| c.set(seed | 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!(
                "[loom shim] model failed at iteration {i} (LOOM_SEED={base}, derived seed {seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Thread spawning that reseeds the child's yield RNG.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawn a thread whose schedule perturbation derives from the current
    /// model iteration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::YIELD_RNG.with(|c| c.set(0)); // lazily reseeded on first op
            f()
        })
    }
}

/// Synchronization primitives with yield injection.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex};

    /// Atomics that may yield around every operation.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// A fence with schedule perturbation.
        pub fn fence(order: Ordering) {
            super::super::maybe_yield();
            std::sync::atomic::fence(order);
            super::super::maybe_yield();
        }

        macro_rules! shim_int_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Yield-injecting wrapper over the std atomic.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// New atomic with the given value.
                    pub const fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Load with perturbation.
                    pub fn load(&self, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        let v = self.0.load(order);
                        super::super::maybe_yield();
                        v
                    }

                    /// Store with perturbation.
                    pub fn store(&self, v: $int, order: Ordering) {
                        super::super::maybe_yield();
                        self.0.store(v, order);
                        super::super::maybe_yield();
                    }

                    /// Swap with perturbation.
                    pub fn swap(&self, v: $int, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        self.0.swap(v, order)
                    }

                    /// Compare-exchange with perturbation.
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        super::super::maybe_yield();
                        let r = self.0.compare_exchange(current, new, success, failure);
                        super::super::maybe_yield();
                        r
                    }

                    /// Weak compare-exchange with perturbation.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Fetch-add with perturbation.
                    pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        let r = self.0.fetch_add(v, order);
                        super::super::maybe_yield();
                        r
                    }

                    /// Fetch-sub with perturbation.
                    pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        let r = self.0.fetch_sub(v, order);
                        super::super::maybe_yield();
                        r
                    }

                    /// Fetch-or with perturbation.
                    pub fn fetch_or(&self, v: $int, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        self.0.fetch_or(v, order)
                    }

                    /// Fetch-and with perturbation.
                    pub fn fetch_and(&self, v: $int, order: Ordering) -> $int {
                        super::super::maybe_yield();
                        self.0.fetch_and(v, order)
                    }
                }
            };
        }

        shim_int_atomic!(AtomicIsize, std::sync::atomic::AtomicIsize, isize);
        shim_int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
        shim_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        shim_int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);
        shim_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// Yield-injecting wrapper over `std::sync::atomic::AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// New atomic with the given value.
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Load with perturbation.
            pub fn load(&self, order: Ordering) -> bool {
                super::super::maybe_yield();
                self.0.load(order)
            }

            /// Store with perturbation.
            pub fn store(&self, v: bool, order: Ordering) {
                super::super::maybe_yield();
                self.0.store(v, order);
                super::super::maybe_yield();
            }

            /// Swap with perturbation.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                super::super::maybe_yield();
                self.0.swap(v, order)
            }
        }

        /// Yield-injecting wrapper over `std::sync::atomic::AtomicPtr`.
        #[derive(Debug)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            /// New atomic holding `p`.
            pub const fn new(p: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(p))
            }

            /// Load with perturbation.
            pub fn load(&self, order: Ordering) -> *mut T {
                super::super::maybe_yield();
                self.0.load(order)
            }

            /// Store with perturbation.
            pub fn store(&self, p: *mut T, order: Ordering) {
                super::super::maybe_yield();
                self.0.store(p, order);
                super::super::maybe_yield();
            }

            /// Swap with perturbation.
            pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
                super::super::maybe_yield();
                self.0.swap(p, order)
            }

            /// Compare-exchange with perturbation.
            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                super::super::maybe_yield();
                let r = self.0.compare_exchange(current, new, success, failure);
                super::super::maybe_yield();
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicIsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_and_atomics_count() {
        std::env::set_var("LOOM_MAX_ITERS", "5");
        super::model(|| {
            let a = Arc::new(AtomicIsize::new(0));
            let a2 = Arc::clone(&a);
            let h = super::thread::spawn(move || {
                for _ in 0..100 {
                    a2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..100 {
                a.fetch_add(1, Ordering::SeqCst);
            }
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 200);
        });
    }

    #[test]
    #[should_panic]
    fn model_propagates_failures() {
        std::env::set_var("LOOM_MAX_ITERS", "2");
        super::model(|| panic!("expected"));
    }
}
