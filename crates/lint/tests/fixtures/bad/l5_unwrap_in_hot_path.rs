//! Bad fixture for L5: `unwrap()` on a scheduler hot path.

pub fn hot(map: &Map) -> Task {
    map.get(7).unwrap()
}
