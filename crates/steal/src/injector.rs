//! Segmented lock-free MPMC injector queue.
//!
//! External submissions enter the pool through this queue (crossbeam-
//! `Injector` style): a linked list of fixed-size **blocks**, each a lap of
//! 32 indices of which 31 hold slots and the last is a *boundary marker*.
//! Producers and consumers claim indices with a CAS on a monotonically
//! increasing 64-bit counter, so there is no ABA and every index maps to
//! exactly one slot of exactly one block. Per-slot state flags order the
//! value hand-off: a consumer that wins an index spins only for the single
//! in-flight producer of that slot, never behind a lock.
//!
//! Layout and protocol:
//!
//! * `tail.index % 32 == 31` means a producer is installing the next block;
//!   other producers spin until the index jumps to the next lap. The
//!   producer that claims offset 30 (the last slot) is the installer: it
//!   links `block.next`, publishes `tail.block`, then skips the index past
//!   the boundary. Because indices are monotonic and only the installer
//!   stores them, `tail.block` always matches `lap(tail.index)` whenever
//!   the offset is not the boundary — a block pointer loaded between an
//!   index load and a successful index CAS is therefore validated by the
//!   CAS itself.
//! * The head side mirrors this: the consumer that claims through offset 30
//!   advances `head.block` to `block.next` (spinning briefly if the
//!   installer has not linked it yet) before skipping the boundary.
//! * Each block counts consumed slots in `done`; the consumer that brings
//!   `done` to 31 owns the block exclusively (head has moved past it, every
//!   producer and consumer of its slots has finished) and **recycles** it
//!   into a small fixed cache that installers take from — steady-state
//!   push/steal traffic allocates nothing (pinned by
//!   `crates/core/tests/alloc_count.rs`).
//!
//! [`Injector::steal_batch_and_pop`] claims up to half a block with one
//! CAS and moves the surplus into the caller's Chase–Lev deque, so a
//! burst of external submissions costs one shared-counter CAS per ~16 jobs
//! instead of one mutex acquisition per job.
//!
//! Every atomic access below carries an `// ord:` tag and every `unsafe`
//! site a `// SAFETY:` comment; `ft-lint` rules L1/L2 enforce this (see
//! `docs/LINTS.md`).

use crate::deque::Worker;
use crate::metrics::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use ft_sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Indices per lap; one lap maps onto one block.
const LAP: u64 = 32;
/// Usable slots per block; index offset `BLOCK_CAP` is the boundary marker.
const BLOCK_CAP: usize = (LAP - 1) as usize;
/// Largest number of slots one `steal_batch_and_pop` claims.
const MAX_BATCH: usize = BLOCK_CAP / 2 + 1;
/// Retired-block cache capacity: covers bursts of a few blocks in flight,
/// keeping steady-state traffic allocation-free.
const CACHE_SLOTS: usize = 4;

/// Slot state: no value yet (producer claimed the index but has not
/// finished writing).
const STATE_EMPTY: u32 = 0;
/// Slot state: value written and published.
const STATE_WRITTEN: u32 = 1;

/// One value cell. The `state` flag hands the value from its unique
/// producer to its unique consumer.
struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicU32,
}

/// One segment of the queue: 31 slots plus the link to the next segment.
struct Block<T> {
    next: AtomicPtr<Block<T>>,
    /// Slots consumed so far; the consumer reaching `BLOCK_CAP` recycles.
    done: AtomicUsize,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new_boxed() -> Box<Self> {
        Box::new(Block {
            next: AtomicPtr::new(std::ptr::null_mut()),
            done: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| Slot {
                value: UnsafeCell::new(MaybeUninit::uninit()),
                state: AtomicU32::new(STATE_EMPTY),
            }),
        })
    }

    /// Reset a fully consumed block for reuse. Caller must own the block
    /// exclusively (done == BLOCK_CAP and head has moved past it).
    fn reset(&self) {
        // ord: Relaxed — the caller owns the block exclusively (done hit
        // BLOCK_CAP); publication to the next producer happens via the
        // cache slot's Release CAS in `recycle`.
        self.next.store(std::ptr::null_mut(), Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        for slot in &self.slots {
            // ord: Relaxed — exclusively owned, as above.
            slot.state.store(STATE_EMPTY, Ordering::Relaxed);
        }
    }
}

/// One end of the queue: a monotone index plus the block that holds the
/// index's lap.
struct Position<T> {
    index: AtomicU64,
    block: AtomicPtr<Block<T>>,
}

/// A segmented lock-free MPMC queue for external job submission.
pub struct Injector<T> {
    head: CachePadded<Position<T>>,
    tail: CachePadded<Position<T>>,
    /// Block cache: fully consumed blocks are reset and parked here;
    /// installers take from it before allocating. A few slots (not one)
    /// because a producer burst can install several blocks before the
    /// consumers of the oldest block finish recycling it.
    cache: [AtomicPtr<Block<T>>; CACHE_SLOTS],
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("len", &self.len())
            .finish()
    }
}

// SAFETY: values move producer→consumer across threads (`T: Send`); all
// shared internals are atomics, and slot cells are accessed only by the
// unique index claimant per the protocol above.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: same argument as `Send` — every slot cell has exactly one
// producer and one consumer (the index claimants), so `&Injector` shared
// across threads never yields aliased cell access.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector (allocates the first block).
    pub fn new() -> Self {
        let first = Box::into_raw(Block::new_boxed());
        Injector {
            head: CachePadded(Position {
                index: AtomicU64::new(0),
                block: AtomicPtr::new(first),
            }),
            tail: CachePadded(Position {
                index: AtomicU64::new(0),
                block: AtomicPtr::new(first),
            }),
            cache: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Number of real (non-boundary) indices below `index`.
    fn count(index: u64) -> u64 {
        (index / LAP) * BLOCK_CAP as u64 + (index % LAP).min(BLOCK_CAP as u64)
    }

    /// Take a cached block or allocate a fresh one.
    fn next_block(&self) -> *mut Block<T> {
        for slot in &self.cache {
            // ord: Acquire — pairs with the Release CAS in `recycle` so the
            // recycler's `reset` stores are visible before we reuse the
            // block.
            let cached = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !cached.is_null() {
                return cached; // already reset by the recycler
            }
        }
        Box::into_raw(Block::new_boxed())
    }

    /// Park a fully consumed block in the cache, or free it if the cache
    /// is full. Caller must own the block exclusively.
    fn recycle(&self, block: *mut Block<T>) {
        // SAFETY: the caller owns the block exclusively (it brought `done`
        // to BLOCK_CAP after the head moved past the block), so resetting
        // its slots cannot race with any producer or consumer.
        unsafe { (*block).reset() };
        for slot in &self.cache {
            // ord: Release success (publishes the reset stores to the next
            // `next_block` Acquire) / Relaxed failure (occupied slot, we
            // learn nothing).
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    block,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        // SAFETY: exclusive ownership (same argument as above) and the block
        // was never parked in the cache, so this is the only free of it.
        drop(unsafe { Box::from_raw(block) });
    }

    /// Push a value (MPMC producer side). Lock-free: one CAS on the tail
    /// index in the common case; the claimant of a block's last slot also
    /// installs the next block.
    // ft-lint: hot-path begin(injector-push)
    pub fn push(&self, value: T) {
        loop {
            // ord: Acquire — pairs with the installer's Release stores of
            // `tail.index`/`tail.block` so a producer that sees a new lap
            // also sees the installed block.
            let tail = self.tail.index.load(Ordering::Acquire);
            let offset = (tail % LAP) as usize;
            if offset == BLOCK_CAP {
                // A producer is installing the next block; wait for the
                // index to jump to the next lap.
                std::hint::spin_loop();
                continue;
            }
            // ord: Acquire — the block pointer is validated by the index CAS
            // below (it changes only together with a lap crossing); Acquire
            // pairs with the installer's Release publication.
            let block = self.tail.block.load(Ordering::Acquire);
            // ord: SeqCst success / Relaxed failure — the successful claim
            // must be totally ordered against `claim`'s tail read (emptiness
            // detection); a failed CAS only triggers a retry.
            if self
                .tail
                .index
                .compare_exchange_weak(tail, tail + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: the successful CAS makes this thread the unique
            // claimant of index `tail`: `block` matches the index's lap (the
            // pointer only changes together with a lap crossing, which would
            // have changed the index and failed the CAS), and the block
            // stays alive until its `done` count — which includes our slot —
            // reaches BLOCK_CAP.
            let b = unsafe { &*block };
            if offset + 1 == BLOCK_CAP {
                // We claimed the last slot: install the next block before
                // publishing the value, so other producers unblock even if
                // we are slow writing.
                let next = self.next_block();
                // ord: Release ×3 — the fresh block's contents must be
                // visible before its pointer is reachable (via `next` for
                // consumers, `tail.block` for producers), and both stores
                // must precede the index store that unblocks spinning
                // producers (they Acquire-load the index).
                b.next.store(next, Ordering::Release);
                self.tail.block.store(next, Ordering::Release);
                self.tail.index.store(tail + 2, Ordering::Release);
            }
            // SAFETY: sole claimant of this slot (unique index): the
            // consumer will not read the cell until the state flag below
            // says WRITTEN.
            unsafe { (*b.slots[offset].value.get()).write(value) };
            // ord: Release — publishes the value write to the consumer's
            // Acquire spin on this flag in `consume`.
            b.slots[offset]
                .state
                .store(STATE_WRITTEN, Ordering::Release);
            return;
        }
    }
    // ft-lint: hot-path end(injector-push)

    /// Claim up to `max` consecutive slots at the head. Returns the block,
    /// the first offset, and how many were claimed; `None` when empty.
    // ft-lint: hot-path begin(injector-steal)
    fn claim(&self, max: usize) -> Option<(*mut Block<T>, usize, usize)> {
        loop {
            // ord: Acquire — pairs with the boundary-advancing consumer's
            // Release stores of `head.index`/`head.block`.
            let head = self.head.index.load(Ordering::Acquire);
            let offset = (head % LAP) as usize;
            if offset == BLOCK_CAP {
                // A consumer is advancing the head block.
                std::hint::spin_loop();
                continue;
            }
            let tail = self.tail.index.load(Ordering::SeqCst);
            if head >= tail {
                return None;
            }
            // Claimable span within the head's block: if the tail is in a
            // later lap, every remaining slot of this block was claimed by
            // some producer already.
            let avail = if head / LAP == tail / LAP {
                (tail - head) as usize
            } else {
                BLOCK_CAP - offset
            };
            let n = avail.min(max);
            // ord: Acquire — validated by the successful index CAS below,
            // same argument as the producer side.
            let block = self.head.block.load(Ordering::Acquire);
            // ord: SeqCst success / Relaxed failure — the claim joins the
            // same total order as the producer CAS and the emptiness check;
            // failure only retries.
            if self
                .head
                .index
                .compare_exchange_weak(head, head + n as u64, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
                continue;
            }
            if offset + n == BLOCK_CAP {
                // We consumed through the last slot: advance the head block.
                // The link is set by the producer that claimed that slot,
                // which has already passed the tail boundary — spin briefly
                // for its store.
                let next = loop {
                    // SAFETY: we claimed slots of `block`, so its `done`
                    // count cannot reach BLOCK_CAP (and recycle) before our
                    // `consume` calls finish — the block outlives this read.
                    // ord: Acquire — pairs with the installer's Release link
                    // so the new block's contents are visible.
                    let p = unsafe { (*block).next.load(Ordering::Acquire) };
                    if !p.is_null() {
                        break p;
                    }
                    std::hint::spin_loop();
                };
                // ord: Release ×2 — the new head block pointer must be
                // visible before the index store unblocks spinning
                // consumers (they Acquire-load the index).
                self.head.block.store(next, Ordering::Release);
                self.head
                    .index
                    .store(head + n as u64 + 1, Ordering::Release);
            }
            return Some((block, offset, n));
        }
    }

    /// Read the value out of a claimed slot, waiting for its in-flight
    /// producer if necessary, and recycle the block once fully consumed.
    ///
    /// # Safety
    /// `(block, offset)` must come from a successful [`Injector::claim`]
    /// and be consumed exactly once.
    unsafe fn consume(&self, block: *mut Block<T>, offset: usize) -> T {
        // SAFETY: per this fn's contract the claim CAS made us the unique
        // consumer of this slot; the block stays alive until `done` (which
        // counts our slot, below) reaches BLOCK_CAP.
        let b = unsafe { &*block };
        let slot = &b.slots[offset];
        // ord: Acquire — pairs with the producer's Release store of
        // STATE_WRITTEN so the value write is visible after the spin.
        while slot.state.load(Ordering::Acquire) != STATE_WRITTEN {
            std::hint::spin_loop();
        }
        // SAFETY: the WRITTEN flag (acquired above) publishes the value;
        // claim-uniqueness makes this the only consuming read of the cell.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // ord: AcqRel — the increment must happen-after our value read (so
        // the recycler's reset cannot precede it) and the final increment
        // acquires every other consumer's release, making the block
        // exclusively ours before `recycle`.
        if b.done.fetch_add(1, Ordering::AcqRel) + 1 == BLOCK_CAP {
            // Every slot of this block has been produced and consumed, and
            // the head has moved past it: we own it exclusively.
            self.recycle(block);
        }
        value
    }

    /// Pop the oldest value (MPMC consumer side). Returns `None` when the
    /// queue is observed empty.
    pub fn steal(&self) -> Option<T> {
        let (block, offset, n) = self.claim(1)?;
        debug_assert_eq!(n, 1);
        // SAFETY: `(block, offset)` comes from the successful claim above
        // and is consumed exactly once.
        Some(unsafe { self.consume(block, offset) })
    }

    /// Claim a batch of values with one CAS; return the oldest and push the
    /// rest onto `dest` (the calling worker's own deque).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Option<T>
    where
        T: Send,
    {
        let (block, offset, n) = self.claim(MAX_BATCH)?;
        // SAFETY: the claim handed us offsets `offset..offset + n`; each is
        // consumed exactly once (the first here, the rest in the loop).
        let first = unsafe { self.consume(block, offset) };
        for k in 1..n {
            // SAFETY: as above — `offset + k` is within the claimed span
            // and consumed exactly once.
            dest.push(unsafe { self.consume(block, offset + k) });
        }
        Some(first)
    }
    // ft-lint: hot-path end(injector-steal)

    /// True when no unclaimed values are visible.
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >= tail
    }

    /// Approximate number of queued values.
    pub fn len(&self) -> usize {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        Self::count(tail).saturating_sub(Self::count(head)) as usize
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // ord: Relaxed — `&mut self` proves exclusivity; all producers and
        // consumers synchronized-with this thread before the drop.
        let mut head = self.head.index.load(Ordering::Relaxed);
        let tail = self.tail.index.load(Ordering::Relaxed);
        let mut block = self.head.block.load(Ordering::Relaxed);
        // SAFETY: exclusive access: indices `head..tail` are exactly the
        // produced-but-unconsumed slots (their producers finished before
        // drop, so every such slot is written), the block chain and cache
        // entries are disjoint allocations, and nothing else can free them.
        unsafe {
            while head < tail {
                let offset = (head % LAP) as usize;
                if offset < BLOCK_CAP {
                    // All producers finished before drop: slot is written.
                    (*(*block).slots[offset].value.get()).assume_init_drop();
                } else {
                    // ord: Relaxed — exclusive access, as above.
                    let next = (*block).next.load(Ordering::Relaxed);
                    drop(Box::from_raw(block));
                    block = next;
                }
                head += 1;
            }
            while !block.is_null() {
                // ord: Relaxed — exclusive access, as above.
                let next = (*block).next.load(Ordering::Relaxed);
                drop(Box::from_raw(block));
                block = next;
            }
            for slot in &self.cache {
                // ord: Relaxed — exclusive access, as above.
                let cached = slot.load(Ordering::Relaxed);
                if !cached.is_null() {
                    drop(Box::from_raw(cached));
                }
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::deque;
    use ft_sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_across_block_boundaries() {
        let q = Injector::new();
        // 100 items span four blocks (31 slots each).
        for i in 0..100u64 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100u64 {
            assert_eq!(q.steal(), Some(i));
        }
        assert_eq!(q.steal(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_steal_reuses_blocks() {
        let q = Injector::new();
        // Far more traffic than blocks: exercises recycling.
        for round in 0..50u64 {
            for i in 0..40 {
                q.push(round * 100 + i);
            }
            for i in 0..40 {
                assert_eq!(q.steal(), Some(round * 100 + i));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn batch_steal_moves_surplus_to_worker() {
        let q = Injector::new();
        for i in 0..20u64 {
            q.push(i);
        }
        let (w, _s) = deque::deque::<u64>();
        let first = q.steal_batch_and_pop(&w).expect("non-empty");
        assert_eq!(first, 0, "oldest item is returned");
        let mut moved = Vec::new();
        while let Some(v) = w.pop() {
            moved.push(v);
        }
        assert!(!moved.is_empty(), "surplus lands in the worker deque");
        assert!(moved.len() < 20, "batch is bounded");
        // Everything claimed exactly once between return, deque, and queue.
        let mut rest = Vec::new();
        while let Some(v) = q.steal() {
            rest.push(v);
        }
        let mut all: Vec<u64> = std::iter::once(first).chain(moved).chain(rest).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_mpmc_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let q = Arc::new(Injector::new());
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let consumed = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                });
            }
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || loop {
                    if let Some(v) = q.steal() {
                        let prev = seen[v as usize].fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prev, 0, "value {v} consumed twice");
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else if consumed.load(Ordering::Relaxed)
                        == (PRODUCERS * PER_PRODUCER) as usize
                    {
                        break;
                    }
                });
            }
        });
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {v} lost");
        }
    }

    #[test]
    fn concurrent_batch_steal_no_loss_no_dup() {
        const TOTAL: u64 = 20_000;
        let q = Arc::new(Injector::new());
        let counts = Arc::new((0..TOTAL).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let consumed = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..TOTAL {
                        q.push(i);
                    }
                });
            }
            for _ in 0..3 {
                let q = Arc::clone(&q);
                let counts = Arc::clone(&counts);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let (w, _s) = deque::deque::<u64>();
                    let mark = |v: u64| {
                        let prev = counts[v as usize].fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prev, 0, "value {v} consumed twice");
                        consumed.fetch_add(1, Ordering::Relaxed);
                    };
                    loop {
                        if let Some(v) = q.steal_batch_and_pop(&w) {
                            mark(v);
                            while let Some(v) = w.pop() {
                                mark(v);
                            }
                        } else if consumed.load(Ordering::Relaxed) == TOTAL as usize {
                            break;
                        }
                    }
                });
            }
        });
        for (v, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {v} lost");
        }
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        let probe = Arc::new(());
        {
            let q = Injector::new();
            for _ in 0..100 {
                q.push(Arc::clone(&probe));
            }
            for _ in 0..37 {
                drop(q.steal());
            }
            assert_eq!(Arc::strong_count(&probe), 1 + 63);
        }
        assert_eq!(Arc::strong_count(&probe), 1, "drop leaked queued values");
    }

    #[test]
    fn len_tracks_boundary_skips() {
        let q = Injector::new();
        for i in 0..64u64 {
            q.push(i);
            assert_eq!(q.len(), (i + 1) as usize);
        }
        for i in 0..64u64 {
            q.steal();
            assert_eq!(q.len(), (63 - i) as usize);
        }
    }
}
