//! Fixture-based self-tests: each bad fixture must fail with exactly its
//! rule ID at the expected span, each good fixture must pass, and a waiver
//! comment must suppress (while staying reported as a waiver).

use ft_lint::{lint_file, Report};
use std::path::Path;

/// Lint one fixture file. `claimed` controls whether the fixture is listed
/// in the (synthetic) loom-coverage manifest, so L4 only fires when a test
/// wants it to.
fn lint_fixture(name: &str, ordering: bool, hot: bool, claimed: bool) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let manifest = if claimed {
        vec![name.to_string()]
    } else {
        Vec::new()
    };
    let mut report = Report::default();
    lint_file(name, &src, ordering, hot, &manifest, &mut report);
    report
}

#[test]
fn bad_l1_missing_safety() {
    let r = lint_fixture("bad/l1_missing_safety.rs", false, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L1");
    assert_eq!(v.file, "bad/l1_missing_safety.rs");
    assert_eq!(v.line, 5, "span points at the unsafe block");
    assert!(r.waivers.is_empty());
}

#[test]
fn bad_l2_untagged_ordering() {
    let r = lint_fixture("bad/l2_untagged_ordering.rs", true, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L2");
    assert_eq!(v.line, 6, "span points at the untagged store");
    assert!(v.message.contains("Ordering::Release"));
}

#[test]
fn bad_l3_direct_atomic_import() {
    let r = lint_fixture("bad/l3_direct_atomic_import.rs", false, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L3");
    assert_eq!(v.line, 3, "span points at the import");
}

#[test]
fn bad_l4_unclaimed_atomics() {
    let r = lint_fixture("bad/l4_unclaimed_atomics.rs", false, false, false);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L4");
    assert!(v.message.contains("LOOM_COVERAGE"));
    // The same file claimed in the manifest is clean.
    let r = lint_fixture("bad/l4_unclaimed_atomics.rs", false, false, true);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn bad_l5_unwrap_in_hot_path() {
    let r = lint_fixture("bad/l5_unwrap_in_hot_path.rs", false, true, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L5");
    assert_eq!(v.line, 4, "span points at the unwrap call");
    // Outside the hot-path dirs the same code is fine.
    let r = lint_fixture("bad/l5_unwrap_in_hot_path.rs", false, false, true);
    assert!(r.violations.is_empty());
}

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good/l1_safety_comment.rs",
        "good/l2_ord_tags.rs",
        "good/l3_facade_import.rs",
    ] {
        let r = lint_fixture(name, true, true, true);
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(r.waivers.is_empty(), "{name}: {:?}", r.waivers);
    }
}

#[test]
fn waiver_suppresses_but_stays_reported() {
    let r = lint_fixture("good/l5_waived_unwrap.rs", false, true, true);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    let w = &r.waivers[0];
    assert_eq!(w.rule, "L5");
    assert_eq!(w.line, 7, "span points at the waived unwrap");
    assert!(w.reason.contains("programming error") || !w.reason.is_empty());
}

#[test]
fn json_report_round_trips_rule_ids() {
    let r = lint_fixture("bad/l1_missing_safety.rs", false, false, true);
    let json = r.render_json();
    assert!(json.contains("\"rule\": \"L1\""));
    assert!(json.contains("\"file\": \"bad/l1_missing_safety.rs\""));
    assert!(json.contains("\"line\": 5"));
}
