//! `bench_pr8` — thread-sweep scaling snapshot for the zero-allocation
//! hot path (paper Fig. 7 analog).
//!
//! Emits `BENCH_PR8.json`: the three `bench_pr2`/`bench_pr4` workloads
//! (scheduler-bound empty grid, compute-bound LCS and LU) measured
//! baseline-vs-FT at **every thread count** of a 1→N sweep on one
//! resident pool per point, so the snapshot records how task throughput
//! and the paper's headline no-fault FT overhead move with worker count
//! after the PR-8 rework (epoch arena descriptors, inline `Job` cells,
//! inline single-successor chains, recycled steal blocks).
//!
//! Usage: `bench_pr8 [--reps N] [--threads T] [--out PATH]
//! [--check --ref BENCH_PR8.json]`
//!
//! `--threads T` is the sweep's upper end; the sweep visits the powers of
//! two up to and including `T` (default 4 → 1, 2, 4). Thread counts above
//! the machine's cores still run (oversubscribed) — on a small CI box the
//! sweep then measures scheduling robustness rather than speedup, and the
//! gates below are chosen to transfer.
//!
//! `--check` gates (exit 1 on failure):
//! * **throughput floor** — best-of-sweep grid throughput (min-time
//!   estimator) must be ≥ 2× the committed `BENCH_PR4.json` grid
//!   reference ([`PR4_GRID_REF_TASKS_PER_S`]), the acceptance line for
//!   the PR-8 hot-path rework;
//! * **overhead band** — against `--ref`, no workload's *sweep-mean*
//!   no-fault FT overhead may regress more than +[`REF_BAND_PP`]pp on
//!   **both** the mean-based and the min-based estimate (the `bench_pr4`
//!   two-estimator AND rule: each alone flakes on a noisy box, a real
//!   regression shifts both). Sweep-mean rather than per-row since PR 9:
//!   the lock-free notify path shifted how overhead tilts across thread
//!   counts, and per-row bands flake on that structure plus ordinary
//!   noise — averaging over the sweep is what makes ±15pp honest on an
//!   oversubscribed 1-core runner (`bench_pr9` gates the same way).
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); resolved values and the git revision land in the JSON.

use ft_apps::AppConfig;
use ft_bench::report::fmt_pct;
use ft_bench::snapshot::{bench_app, bench_grid, BenchResult};
use ft_bench::AppKind;
use ft_steal::pool::{Pool, PoolConfig};

/// Committed `BENCH_PR4.json` grid reference on this box
/// (`grid-empty-96x96`, `baseline_tasks_per_s`): the pre-PR8 hot path the
/// ≥ 2× acceptance gate is measured against.
const PR4_GRID_REF_TASKS_PER_S: f64 = 702_246.7;

/// Cross-run regression band against `--ref`, same width as `bench_pr4`'s
/// reference gate, applied to per-workload sweep-mean overhead.
const REF_BAND_PP: f64 = 15.0;

/// One sweep point: every workload measured on a resident pool of
/// `threads` workers.
struct SweepPoint {
    threads: usize,
    results: Vec<BenchResult>,
}

impl SweepPoint {
    /// Grid throughput from best-of-reps time: near-deterministic on a
    /// loaded box, so the 2× gate compares this estimator.
    fn grid_tasks_per_s_min(&self) -> f64 {
        let g = &self.results[0];
        g.tasks as f64 / g.baseline.min
    }
    fn to_json(&self) -> String {
        let rows: Vec<String> = self.results.iter().map(|r| r.to_json()).collect();
        // The workload rows are indented for the top-level "benches" array;
        // re-indent them two levels deeper for the sweep nesting.
        let rows = rows.join(",\n").replace("\n", "\n    ");
        format!(
            "    {{\n      \"threads\": {},\n      \
             \"grid_tasks_per_s_min_based\": {:.1},\n      \
             \"benches\": [\n    {}\n      ]\n    }}",
            self.threads,
            self.grid_tasks_per_s_min(),
            rows
        )
    }
}

/// Powers of two from 1 up to and including `max`.
fn sweep_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut t = 1usize;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max.max(1));
    counts
}

/// Pull `(threads, name, ft_overhead_pct, ft_overhead_min_pct)` rows back
/// out of a committed `BENCH_PR8.json` (line-oriented no-serde scan, as
/// in the other snapshot binaries). The top-level header's `"threads"`
/// field is read too, then overwritten by the first sweep point before
/// any workload row appears.
fn parse_reference(text: &str) -> Vec<(usize, String, f64, f64)> {
    let mut out = Vec::new();
    let mut threads = 0usize;
    let mut name: Option<String> = None;
    let mut ovh: Option<f64> = None;
    let grab = |line: &str, key: &str| -> Option<String> {
        line.strip_prefix(key).map(|rest| {
            rest.trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_string()
        })
    };
    for line in text.lines() {
        let t = line.trim();
        if let Some(v) = grab(t, "\"threads\":") {
            threads = v.parse().unwrap_or(threads);
        } else if let Some(v) = grab(t, "\"name\":") {
            name = Some(v);
        } else if let Some(v) = grab(t, "\"ft_overhead_pct\":") {
            ovh = v.parse().ok();
        } else if let Some(v) = grab(t, "\"ft_overhead_min_pct\":") {
            if let (Some(n), Some(o), Ok(m)) = (name.take(), ovh.take(), v.parse()) {
                out.push((threads, n, o, m));
            }
        }
    }
    out
}

fn main() {
    let cli = ft_bench::meta::parse_args(
        "bench_pr8 [--reps N] [--threads T] [--out PATH] [--check --ref BENCH_PR8.json]",
        4,
        "BENCH_PR8.json",
    );
    // Sweep points are cheap (tens of ms per rep) and the band gate leans
    // on the min-of-reps estimator, which only converges once every
    // configuration has seen enough interference-free reps — give the rep
    // count a floor, as `bench_pr4` does for its microbenches.
    let reps = cli.reps.max(15);

    let mut sweep = Vec::new();
    for threads in sweep_counts(cli.threads) {
        let pool = Pool::new(PoolConfig::with_threads(threads));
        // Warm this pool off the clock: thread spawn, code pages, the
        // injector block cache and the workers' deque rings.
        bench_grid(&pool, 96, 1);
        let results = vec![
            bench_grid(&pool, 96, reps),
            bench_app(&pool, AppKind::Lcs, AppConfig::new(2048, 64), reps),
            bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps),
        ];
        for r in &results {
            println!(
                "t={threads} {:<18} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  \
                 overhead {} (min-based {})",
                r.name,
                r.tasks,
                r.baseline.mean,
                r.baseline.std,
                r.ft.mean,
                r.ft.std,
                fmt_pct(r.overhead_pct()),
                fmt_pct(r.overhead_min_pct()),
            );
        }
        sweep.push(SweepPoint { threads, results });
    }
    let best_grid = sweep
        .iter()
        .map(|p| p.grid_tasks_per_s_min())
        .fold(0.0f64, f64::max);
    println!(
        "best grid throughput {best_grid:.0} tasks/s (min-based) — {:.2}x the \
         BENCH_PR4 reference {PR4_GRID_REF_TASKS_PER_S:.0}",
        best_grid / PR4_GRID_REF_TASKS_PER_S
    );

    let rows: Vec<String> = sweep.iter().map(|p| p.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \"pr4_grid_ref_tasks_per_s\": {:.1},\n  \
         \"best_grid_tasks_per_s_min_based\": {:.1},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::json_header("bench_pr8/v1", cli.threads, reps),
        PR4_GRID_REF_TASKS_PER_S,
        best_grid,
        rows.join(",\n")
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);

    if !cli.check {
        return;
    }

    // --- Gate ------------------------------------------------------------
    let mut failures = Vec::new();
    if best_grid < 2.0 * PR4_GRID_REF_TASKS_PER_S {
        failures.push(format!(
            "best-of-sweep grid throughput {best_grid:.0} tasks/s is below 2x the \
             BENCH_PR4 reference {PR4_GRID_REF_TASKS_PER_S:.0}"
        ));
    }

    // Overhead band, on per-workload *sweep-mean* overhead vs the
    // committed reference: per-row values swing past any honest band on
    // this box (and since PR 9 the overhead tilt across thread counts is
    // real structure, not noise) — averaging over the sweep is what a
    // ±15pp band can actually hold. One-sided, like bench_pr4: dropping
    // below the reference is an improvement; both estimators must
    // regress to fail.
    if let Some(path) = cli.reference {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let reference_rows = parse_reference(&text);
        assert!(
            !reference_rows.is_empty(),
            "no sweep rows parsed from {path}"
        );
        let sweep_mean = |wi: usize, f: &dyn Fn(&BenchResult) -> f64| {
            sweep.iter().map(|p| f(&p.results[wi])).sum::<f64>() / sweep.len() as f64
        };
        for wi in 0..sweep[0].results.len() {
            let name = &sweep[0].results[wi].name;
            let rows: Vec<_> = reference_rows
                .iter()
                .filter(|(_, n, _, _)| n == name)
                .collect();
            if rows.is_empty() {
                failures.push(format!("reference {path} has no rows for {name}"));
                continue;
            }
            let ref_ovh = rows.iter().map(|(_, _, o, _)| o).sum::<f64>() / rows.len() as f64;
            let ref_ovh_min = rows.iter().map(|(_, _, _, m)| m).sum::<f64>() / rows.len() as f64;
            let d_mean = sweep_mean(wi, &|r| r.overhead_pct()) - ref_ovh;
            let d_min = sweep_mean(wi, &|r| r.overhead_min_pct()) - ref_ovh_min;
            if d_mean > REF_BAND_PP && d_min > REF_BAND_PP {
                failures.push(format!(
                    "{name}: sweep-mean ft overhead regressed Δ{d_mean:+.2}pp (mean) / \
                     Δ{d_min:+.2}pp (min) vs reference {ref_ovh:.2}% / {ref_ovh_min:.2}% — \
                     both estimators exceed +{REF_BAND_PP}pp"
                ));
            } else {
                println!(
                    "check {name} vs ref: Δ mean {d_mean:+.2}pp / min {d_min:+.2}pp \
                     (gate: both > +{REF_BAND_PP}pp)"
                );
            }
        }
    }
    ft_bench::meta::exit_gate(&failures);
}
