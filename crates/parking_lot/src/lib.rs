//! Offline shim for the `parking_lot` crate.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so external dependencies are replaced by minimal
//! in-repo shims (see the workspace `Cargo.toml`). This crate reproduces
//! exactly the slice of the `parking_lot` 0.12 API the workspace uses —
//! `Mutex`, `RwLock`, `Condvar` with non-poisoning guards and
//! `Condvar::wait(&mut guard)` — on top of `std::sync`.
//!
//! Poisoning is handled the way `parking_lot` behaves: a panicked holder
//! does not poison the lock (we recover the inner guard from the
//! `PoisonError`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`] in the
/// `wait(&mut guard)` style of `parking_lot`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
