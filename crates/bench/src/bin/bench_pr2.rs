//! `bench_pr2` — machine-readable perf trajectory snapshot.
//!
//! Emits `BENCH_PR2.json` (repo root by default): baseline-vs-FT wall
//! clock and task throughput on a scheduler-bound synthetic grid plus two
//! compute-bound paper apps, and the paper's headline number — the
//! **no-fault FT overhead %** (Figure 4's left edge). CI runs it as a
//! release-build smoke test; the JSON gives successive PRs a fixed format
//! to compare against.
//!
//! Usage: `bench_pr2 [--reps N] [--threads T] [--out PATH]`
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); the resolved values and the git revision are recorded
//! in the emitted JSON.

use ft_apps::AppConfig;
use ft_bench::report::fmt_pct;
use ft_bench::snapshot::{bench_app, bench_grid};
use ft_bench::AppKind;
use ft_steal::pool::{Pool, PoolConfig};

fn main() {
    let cli = ft_bench::meta::parse_args(
        "bench_pr2 [--reps N] [--threads T] [--out PATH]",
        2,
        "BENCH_PR2.json",
    );
    let (reps, threads) = (cli.reps, cli.threads);

    let pool = Pool::new(PoolConfig::with_threads(threads));
    let results = vec![
        bench_grid(&pool, 96, reps),
        bench_app(&pool, AppKind::Lcs, AppConfig::new(2048, 64), reps),
        bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps),
    ];

    for r in &results {
        println!(
            "{:<18} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  overhead {}",
            r.name,
            r.tasks,
            r.baseline.mean,
            r.baseline.std,
            r.ft.mean,
            r.ft.std,
            fmt_pct(r.overhead_pct()),
        );
    }

    let rows: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \"benches\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::json_header("bench_pr2/v1", threads, reps),
        rows.join(",\n")
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);
}
