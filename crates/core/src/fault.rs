//! The detected-soft-error model.
//!
//! Section II: "a soft error affecting a task affects the computation only
//! if the description of the task or any of its outputs is affected.
//! Therefore, we focus on recovery from corruption of data blocks or task
//! descriptors […] once it is detected. […] We also assume that once an
//! error is detected, all subsequent accesses to that object will observe
//! the error."
//!
//! Cilk++'s exceptions become `Result`s here: every guarded access to a
//! descriptor or block version returns `Err(Fault)` once the object is
//! poisoned, and the scheduler's `match` arms are the paper's catch blocks.

use crate::graph::Key;

/// What kind of corruption was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The task descriptor (join counter, notify array, status, …) is
    /// corrupt.
    Descriptor,
    /// A data-block version produced by the source task is corrupt.
    Data,
    /// A data-block version was overwritten (evicted under the memory-reuse
    /// policy) and must be reproduced by re-executing its producer
    /// ("a fault might result in the need to use such a data block version
    /// after it has been overwritten").
    Overwritten,
}

/// A detected error, attributed to the task whose state is corrupt.
///
/// Attribution is what lets `ComputeAndNotify`'s catch block decide between
/// "error in A → recover A" and "error elsewhere → reset A and recover the
/// source" (Guarantee 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The task whose descriptor or output is corrupt.
    pub source: Key,
    /// The kind of corruption.
    pub kind: FaultKind,
    /// Life number of the corrupt incarnation, when known (0 = unknown;
    /// recovery then resolves the current incarnation from the task map).
    pub life: u64,
}

impl Fault {
    /// Descriptor corruption of `source` at incarnation `life`.
    pub fn descriptor(source: Key, life: u64) -> Self {
        Fault {
            source,
            kind: FaultKind::Descriptor,
            life,
        }
    }

    /// Data corruption produced by `source`.
    pub fn data(source: Key) -> Self {
        Fault {
            source,
            kind: FaultKind::Data,
            life: 0,
        }
    }

    /// An overwritten (evicted) version produced by `source`.
    pub fn overwritten(source: Key) -> Self {
        Fault {
            source,
            kind: FaultKind::Overwritten,
            life: 0,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault in task {} (kind {:?}, life {})",
            self.source, self.kind, self.life
        )
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = Fault::descriptor(5, 2);
        assert_eq!(f.source, 5);
        assert_eq!(f.kind, FaultKind::Descriptor);
        assert_eq!(f.life, 2);

        let f = Fault::data(7);
        assert_eq!(f.kind, FaultKind::Data);
        assert_eq!(f.life, 0);

        let f = Fault::overwritten(9);
        assert_eq!(f.kind, FaultKind::Overwritten);
    }

    #[test]
    fn display_mentions_source() {
        let f = Fault::data(42);
        let s = format!("{f}");
        assert!(s.contains("42"));
    }
}
