//! The full Section V expressions — Lemma 4 (work) and Lemma 6 (span) with
//! their contention terms.
//!
//! [`crate::analysis`] provides the simplified `T1`/`T∞` used for speedup
//! accounting; this module evaluates the lemmas' *complete* forms, which
//! add the synchronization-contention terms the proofs charge for:
//!
//! * `L_J(A) = Σ_{B ∈ out(A)} min{|in(B)|, P}` — waiting to decrement
//!   successors' join counters;
//! * `L_N(A) = Σ_{C ∈ in(A)} min{|in(C)|, P}` — contention on
//!   predecessors' notify arrays;
//! * `L_S(X,Y) = min{|in(Y)|, P}` — the per-edge decrement wait on the
//!   critical path.
//!
//! Lemma 4:
//! `W(D_N) = O( Σ_A [ N(A)·(W(com(A)) + Σ_{B∈out(A)} N(B) + L_N(A)) + L_J(A) ] )`
//!
//! Lemma 6:
//! `S(E_N) ≤ O( max_{p ∈ paths} Σ_{X∈p} [ N(X)·(S(com(X)) +
//!   Σ_{Y∈out(X)} N(Y) + L_N(X)) ] + Σ_{(X,Y)∈p} L_S(X,Y) )`
//!
//! All contention terms are counted in abstract unit operations; callers
//! convert to time by scaling with a per-operation cost (see the `repro
//! bound` harness).

use crate::graph::{Key, TaskGraph};
use crate::seq::topo_order;
use std::collections::HashMap;

/// Inputs to the lemma evaluations.
pub struct LemmaParams<'a> {
    /// Work of the compute function, `W(com(A))`, per task.
    pub cost: &'a dyn Fn(Key) -> f64,
    /// Execution counts `N(A)` (1 everywhere for fault-free runs).
    pub n_of: &'a dyn Fn(Key) -> f64,
    /// Processor count `P`.
    pub p: usize,
}

/// `L_J(A) = Σ_{B ∈ out(A)} min{|in(B)|, P}`.
pub fn l_join(graph: &dyn TaskGraph, key: Key, p: usize) -> f64 {
    graph
        .successors(key)
        .into_iter()
        .map(|b| (graph.predecessors(b).len().min(p)) as f64)
        .sum()
}

/// `L_N(A) = Σ_{C ∈ in(A)} min{|in(C)|, P}`.
pub fn l_notify(graph: &dyn TaskGraph, key: Key, p: usize) -> f64 {
    graph
        .predecessors(key)
        .into_iter()
        .map(|c| (graph.predecessors(c).len().min(p)) as f64)
        .sum()
}

/// Lemma 4: total work of any execution with counts `N`, including
/// contention terms (unit operations; compute work in `cost` units).
pub fn lemma4_work(graph: &dyn TaskGraph, params: &LemmaParams<'_>) -> f64 {
    let order = topo_order(graph);
    let mut total = 0.0;
    for &a in &order {
        let n_a = (params.n_of)(a);
        let notify_scan: f64 = graph
            .successors(a)
            .into_iter()
            .map(|b| (params.n_of)(b))
            .sum();
        total += n_a * ((params.cost)(a) + notify_scan + l_notify(graph, a, params.p))
            + l_join(graph, a, params.p);
    }
    total
}

/// Lemma 6: span upper bound of the deterministic execution DAG `E_N`
/// (unit operations; compute span in `cost` units — our kernels are
/// sequential so span = work per task).
pub fn lemma6_span(graph: &dyn TaskGraph, params: &LemmaParams<'_>) -> f64 {
    let order = topo_order(graph);
    let index: HashMap<Key, usize> = order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut best = vec![0.0f64; order.len()];
    let mut overall: f64 = 0.0;
    for (i, &x) in order.iter().enumerate() {
        let n_x = (params.n_of)(x);
        let notify_scan: f64 = graph
            .successors(x)
            .into_iter()
            .map(|y| (params.n_of)(y))
            .sum();
        let node_term = n_x * ((params.cost)(x) + notify_scan + l_notify(graph, x, params.p));
        // Incoming edges contribute the L_S(X, Y=x) decrement wait.
        let ls_in = (graph.predecessors(x).len().min(params.p)) as f64;
        let mut from_pred = 0.0f64;
        for pkey in graph.predecessors(x) {
            let v = best[index[&pkey]] + ls_in;
            if v > from_pred {
                from_pred = v;
            }
        }
        best[i] = from_pred + node_term;
        overall = overall.max(best[i]);
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::work_span;
    use crate::fault::Fault;
    use crate::graph::ComputeCtx;

    /// Diamond: 0 → {1,2} → 3.
    struct Diamond;
    impl TaskGraph for Diamond {
        fn sink(&self) -> Key {
            3
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            match k {
                0 => vec![],
                1 | 2 => vec![0],
                _ => vec![1, 2],
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            match k {
                0 => vec![1, 2],
                1 | 2 => vec![3],
                _ => vec![],
            }
        }
        fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    #[test]
    fn contention_terms_hand_computed() {
        let g = Diamond;
        // in-degrees: |in(0)|=0, |in(1)|=|in(2)|=1, |in(3)|=2.
        // L_J(0) = min(1,P)+min(1,P) = 2 at any P >= 1.
        assert_eq!(l_join(&g, 0, 4), 2.0);
        // L_J(1) = min(|in(3)|,P) = 2 at P=4, 1 at P=1.
        assert_eq!(l_join(&g, 1, 4), 2.0);
        assert_eq!(l_join(&g, 1, 1), 1.0);
        assert_eq!(l_join(&g, 3, 4), 0.0);
        // L_N(3) = Σ_{C∈in(3)} min(|in(C)|,P) = 1 + 1.
        assert_eq!(l_notify(&g, 3, 4), 2.0);
        assert_eq!(l_notify(&g, 0, 4), 0.0);
    }

    #[test]
    fn lemma4_fault_free_unit_cost() {
        let g = Diamond;
        let cost = |_: Key| 1.0;
        let n = |_: Key| 1.0;
        let params = LemmaParams {
            cost: &cost,
            n_of: &n,
            p: 4,
        };
        // Per node: N(A)(1 + Σ N(B) + L_N(A)) + L_J(A):
        // 0: 1*(1+2+0) + 2 = 5
        // 1: 1*(1+1+1) + 2 = 5   (L_N(1)=min(|in(0)|,P)=0? in(1)={0}, |in(0)|=0 → 0)
        // recompute: L_N(1) = min(0,4) = 0 → 1*(1+1+0)+2 = 4
        // 2: same as 1 = 4
        // 3: 1*(1+0+2) + 0 = 3
        // total = 5 + 4 + 4 + 3 = 16
        let w = lemma4_work(&g, &params);
        assert!((w - 16.0).abs() < 1e-9, "w = {w}");
    }

    #[test]
    fn lemma6_fault_free_unit_cost() {
        let g = Diamond;
        let cost = |_: Key| 1.0;
        let n = |_: Key| 1.0;
        let params = LemmaParams {
            cost: &cost,
            n_of: &n,
            p: 4,
        };
        // Path 0 → 1 → 3 (or via 2):
        // node(0) = 1+2+0 = 3; edge L_S into 1 = min(1,4)=1; node(1) = 1+1+0 = 2;
        // edge L_S into 3 = min(2,4)=2; node(3) = 1+0+2 = 3.
        // span = 3 + 1 + 2 + 2 + 3 = 11.
        let s = lemma6_span(&g, &params);
        assert!((s - 11.0).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn lemmas_dominate_simple_forms() {
        // The lemma forms include everything the simple T1/T∞ include, so
        // they must dominate them for any N and cost.
        let g = Diamond;
        let cost = |k: Key| 1.0 + k as f64;
        let n = |k: Key| if k == 1 { 3.0 } else { 1.0 };
        let (t1, tinf) = work_span(&g, cost, n);
        let params = LemmaParams {
            cost: &cost,
            n_of: &n,
            p: 8,
        };
        assert!(lemma4_work(&g, &params) >= t1);
        assert!(lemma6_span(&g, &params) >= tinf);
    }

    #[test]
    fn contention_saturates_with_p() {
        // min{|in|, P} caps at the in-degree: beyond P = max in-degree the
        // lemma values stop growing.
        let g = Diamond;
        let cost = |_: Key| 1.0;
        let n = |_: Key| 1.0;
        let at = |p: usize| {
            let params = LemmaParams {
                cost: &cost,
                n_of: &n,
                p,
            };
            (lemma4_work(&g, &params), lemma6_span(&g, &params))
        };
        let (w1, s1) = at(1);
        let (w2, s2) = at(2);
        let (w64, s64) = at(64);
        assert!(w2 >= w1 && s2 >= s1);
        assert_eq!(w2, w64, "saturated at max degree");
        assert_eq!(s2, s64);
    }

    #[test]
    fn reexecution_scales_work_superlinearly_on_hot_successors() {
        // Lemma 4's Σ N(B) term: re-executing a node whose successors also
        // re-execute costs more than the products of either alone.
        let g = Diamond;
        let cost = |_: Key| 1.0;
        let n_all_twice = |_: Key| 2.0;
        let n_one = |_: Key| 1.0;
        let p4 = |n_of: &dyn Fn(Key) -> f64| {
            lemma4_work(
                &g,
                &LemmaParams {
                    cost: &cost,
                    n_of,
                    p: 4,
                },
            )
        };
        let w1 = p4(&n_one);
        let w2 = p4(&n_all_twice);
        // The notify-scan term is quadratic in N: more than 2x growth.
        assert!(w2 > 2.0 * w1, "w2 = {w2}, w1 = {w1}");
    }
}
