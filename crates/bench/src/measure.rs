//! Repetition + statistics for the experiment harness.
//!
//! The paper takes "10 runs and report[s] the average (arithmetic mean);
//! standard deviations are presented as error bars" — [`measure`] does the
//! same over wall-clock seconds.

use std::time::Instant;

/// Mean / std / min / max of repeated measurements (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single rep).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of repetitions.
    pub reps: usize,
}

impl Stats {
    /// Compute from raw samples. Panics on empty input.
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Stats {
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            reps: samples.len(),
        }
    }

    /// Percentage overhead of `self` relative to `base` means.
    pub fn overhead_pct(&self, base: &Stats) -> f64 {
        (self.mean - base.mean) / base.mean * 100.0
    }
}

/// Time `reps` executions of `f` (seconds each), returning statistics.
pub fn measure<F: FnMut()>(reps: usize, mut f: F) -> Stats {
    assert!(reps > 0);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    Stats::from_samples(&samples)
}

/// Statistics over arbitrary per-rep counts (e.g. re-executed tasks,
/// Table II).
pub fn count_stats(counts: &[u64]) -> Stats {
    let samples: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    Stats::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_samples() {
        let s = Stats::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.reps, 3);
    }

    #[test]
    fn stats_spread() {
        let s = Stats::from_samples(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Stats::from_samples(&[5.0]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn overhead_pct() {
        let base = Stats::from_samples(&[1.0]);
        let other = Stats::from_samples(&[1.1]);
        assert!((other.overhead_pct(&base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measure_runs_reps() {
        let mut n = 0;
        let s = measure(5, || n += 1);
        assert_eq!(n, 5);
        assert_eq!(s.reps, 5);
        assert!(s.mean >= 0.0);
    }

    #[test]
    fn count_stats_table2_style() {
        let s = count_stats(&[443, 448, 442]);
        assert!((s.mean - 444.333).abs() < 0.01);
        assert_eq!(s.min, 442.0);
        assert_eq!(s.max, 448.0);
    }
}
