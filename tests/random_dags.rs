//! Property-based tests: random layered DAGs × random fault plans.
//!
//! For arbitrary DAG shapes and arbitrary fault injections, the
//! fault-tolerant scheduler must (P1/Theorem 1) produce exactly the values
//! a sequential execution produces, (P2/Guarantee 1) recover each failure
//! at most once, and (P4/Lemma 3) always complete.

use ft_cmap::ShardedMap;
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::FtScheduler;
use nabbit_ft::seq;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A randomly generated layered DAG. Task values are a deterministic hash
/// of predecessor values, stored in a (resilient) concurrent map.
struct RandomDag {
    preds: HashMap<Key, Vec<Key>>,
    succs: HashMap<Key, Vec<Key>>,
    sink: Key,
    values: ShardedMap<u64>,
}

impl RandomDag {
    /// Build from a shape description: `widths[l]` nodes in layer `l`;
    /// `edges_seed` drives predecessor selection.
    fn generate(widths: &[usize], edges_seed: u64) -> RandomDag {
        let mut preds: HashMap<Key, Vec<Key>> = HashMap::new();
        let mut succs: HashMap<Key, Vec<Key>> = HashMap::new();
        let mut state = edges_seed | 1;
        let mut next = move || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let key_of = |layer: usize, idx: usize| (layer * 1000 + idx) as Key;
        for (l, &w) in widths.iter().enumerate() {
            for idx in 0..w {
                let k = key_of(l, idx);
                let mut p = Vec::new();
                if l > 0 {
                    let prev_w = widths[l - 1];
                    let nparents = 1 + (next() as usize) % 3.min(prev_w);
                    for t in 0..nparents {
                        let cand = key_of(l - 1, (next() as usize + t) % prev_w);
                        if !p.contains(&cand) {
                            p.push(cand);
                        }
                    }
                }
                for &q in &p {
                    succs.entry(q).or_default().push(k);
                }
                preds.insert(k, p);
                succs.entry(k).or_default();
            }
        }
        // Sink depends on every node without successors.
        let sink: Key = 999_999;
        let mut sink_preds: Vec<Key> = preds
            .keys()
            .copied()
            .filter(|k| succs.get(k).map(|s| s.is_empty()).unwrap_or(true))
            .collect();
        sink_preds.sort_unstable();
        for &q in &sink_preds {
            succs.get_mut(&q).unwrap().push(sink);
        }
        preds.insert(sink, sink_preds);
        succs.insert(sink, vec![]);
        RandomDag {
            preds,
            succs,
            sink,
            values: ShardedMap::with_shards(16),
        }
    }

    fn task_count(&self) -> usize {
        self.preds.len()
    }

    fn all_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.preds.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn value_of(&self, k: Key) -> Option<u64> {
        self.values.get(k)
    }
}

impl TaskGraph for RandomDag {
    fn sink(&self) -> Key {
        self.sink
    }
    fn predecessors(&self, key: Key) -> Vec<Key> {
        self.preds.get(&key).cloned().unwrap_or_default()
    }
    fn successors(&self, key: Key) -> Vec<Key> {
        self.succs.get(&key).cloned().unwrap_or_default()
    }
    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for p in self.predecessors(key) {
            let pv = self
                .values
                .get(p)
                .expect("predecessor value present (dependences guarantee it)");
            h = h.rotate_left(13) ^ pv.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        }
        self.values.replace(key, h);
        Ok(())
    }
}

fn shared_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(PoolConfig::with_threads(4)))
}

/// Oracle: values from a sequential fault-free execution.
fn sequential_values(widths: &[usize], edges_seed: u64) -> HashMap<Key, u64> {
    let dag = RandomDag::generate(widths, edges_seed);
    seq::run(&dag).unwrap();
    dag.all_keys()
        .into_iter()
        .map(|k| (k, dag.value_of(k).unwrap()))
        .collect()
}

fn phase_of(sel: u8) -> Phase {
    match sel % 3 {
        0 => Phase::BeforeCompute,
        1 => Phase::AfterCompute,
        _ => Phase::AfterNotify,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_dag_random_faults_same_result(
        widths in prop::collection::vec(1usize..7, 1..6),
        edges_seed in any::<u64>(),
        fault_fraction in 0.0f64..1.0,
        phase_sel in any::<u8>(),
        plan_seed in any::<u64>(),
    ) {
        let oracle = sequential_values(&widths, edges_seed);

        let dag = Arc::new(RandomDag::generate(&widths, edges_seed));
        let keys = dag.all_keys();
        let count = ((keys.len() as f64) * fault_fraction) as usize;
        let phase = phase_of(phase_sel);
        let plan = Arc::new(FaultPlan::sample(&keys, count, phase, plan_seed));
        let report = FtScheduler::with_plan(
            Arc::clone(&dag) as Arc<dyn TaskGraph>, plan,
        ).run(shared_pool());

        prop_assert!(report.sink_completed, "sink must complete (P4)");
        prop_assert_eq!(
            report.distinct_tasks_executed as usize,
            dag.task_count(),
            "every task executed at least once"
        );
        for (&k, &want) in &oracle {
            prop_assert_eq!(dag.value_of(k), Some(want), "value of task {} (P1)", k);
        }
    }

    #[test]
    fn random_dag_multi_fire_faults_same_result(
        widths in prop::collection::vec(1usize..6, 2..5),
        edges_seed in any::<u64>(),
        fires in 1u64..4,
        plan_seed in any::<u64>(),
    ) {
        let oracle = sequential_values(&widths, edges_seed);
        let dag = Arc::new(RandomDag::generate(&widths, edges_seed));
        let keys = dag.all_keys();
        // Every 3rd task fails `fires` times across incarnations.
        let sites: Vec<FaultSite> = keys.iter().enumerate()
            .filter(|(i, _)| (*i as u64 + plan_seed) % 3 == 0)
            .map(|(_, &k)| FaultSite { key: k, phase: Phase::AfterCompute, fires })
            .collect();
        let plan = Arc::new(FaultPlan::new(sites));
        let report = FtScheduler::with_plan(
            Arc::clone(&dag) as Arc<dyn TaskGraph>, plan,
        ).run(shared_pool());

        prop_assert!(report.sink_completed);
        for (&k, &want) in &oracle {
            prop_assert_eq!(dag.value_of(k), Some(want));
        }
    }

    #[test]
    fn random_dag_fault_free_executes_each_task_once(
        widths in prop::collection::vec(1usize..8, 1..6),
        edges_seed in any::<u64>(),
    ) {
        let dag = Arc::new(RandomDag::generate(&widths, edges_seed));
        let report = FtScheduler::new(Arc::clone(&dag) as Arc<dyn TaskGraph>)
            .run(shared_pool());
        prop_assert!(report.sink_completed);
        prop_assert_eq!(report.computes as usize, dag.task_count(), "P6");
        prop_assert_eq!(report.re_executions, 0);
        prop_assert_eq!(report.recoveries, 0);
    }
}
