//! Execution tracing: an optional, low-overhead event recorder for the
//! fault-tolerant scheduler.
//!
//! A [`Trace`] collects timestamped scheduler events (task lifecycle,
//! fault observations, recovery actions). It exists for three reasons:
//! debugging concurrent recovery is hopeless without an event log; tests
//! assert causal orderings on it (a task never computes before its
//! predecessors, recoveries per incarnation are unique); and the experiment
//! harness can dump traces for post-mortem inspection of fault campaigns.
//!
//! Recording is append-only into per-worker shards — the scheduler engine
//! passes the executor's worker index to [`Trace::record_from`], so two
//! workers never contend on the same shard lock; `None` (the default)
//! costs a single branch.

use crate::fault::FaultKind;
use crate::graph::Key;
use crate::inject::Phase;
use ft_sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::time::Instant;

pub mod oracle;

/// One scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Task inserted into the task map (first incarnation).
    Inserted {
        /// Task key.
        key: Key,
    },
    /// A compute execution finished successfully.
    Computed {
        /// Task key.
        key: Key,
        /// Incarnation that computed.
        life: u64,
    },
    /// Task transitioned to Completed (notify array drained).
    Completed {
        /// Task key.
        key: Key,
        /// Incarnation.
        life: u64,
    },
    /// A notification was delivered: the bit for `pred` was set, so the
    /// join counter was decremented (Guarantee 3's "exactly once" side).
    Notified {
        /// Task being notified.
        key: Key,
        /// Incarnation being notified.
        life: u64,
        /// Predecessor the notification came from (`key` itself for the
        /// self-edge consumed at the end of `InitAndCompute`).
        pred: Key,
    },
    /// A duplicate notification was absorbed: the bit for `pred` was
    /// already clear, so the join counter was *not* decremented.
    DuplicateNotify {
        /// Task being notified.
        key: Key,
        /// Incarnation being notified.
        life: u64,
        /// Predecessor the duplicate came from.
        pred: Key,
    },
    /// A fault was injected by the plan.
    Injected {
        /// Task key.
        key: Key,
        /// Lifecycle point.
        phase: Phase,
    },
    /// A fault was observed by some traversal.
    FaultObserved {
        /// Task whose corruption was observed.
        source: Key,
        /// Corruption kind.
        kind: FaultKind,
    },
    /// `RecoverTask` replaced the incarnation.
    RecoveryStarted {
        /// Task key.
        key: Key,
        /// The *new* incarnation's life number.
        new_life: u64,
    },
    /// `RecoverTaskOnce` was suppressed by the recovery table.
    RecoverySuppressed {
        /// Task key.
        key: Key,
        /// The life whose failure was observed.
        life: u64,
    },
    /// `ResetNode` re-initialized a task after an input fault.
    Reset {
        /// Task key.
        key: Key,
        /// Incarnation that was reset.
        life: u64,
    },
}

/// A recorded event with a global sequence number and a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Global emission order (0-based). Unlike `t_ns`, sequence numbers
    /// are unique, so sorting by `seq` gives a stable total order even
    /// when two events land in the same nanosecond (which is the common
    /// case under the deterministic executor).
    pub seq: u64,
    /// Nanoseconds since the trace was created.
    pub t_ns: u64,
    /// The event.
    pub event: Event,
}

const SHARDS: usize = 16;

/// An append-only, sharded event log.
pub struct Trace {
    start: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<Vec<TimedEvent>>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Record an event from an unknown thread (falls back to a per-thread
    /// shard assignment; ordering across shards is by the global sequence
    /// number).
    pub fn record(&self, event: Event) {
        self.record_from(None, event);
    }

    /// Record an event from worker `worker`: the shard is the worker
    /// index, so pool workers never contend on a shard lock. `None`
    /// (non-pool threads) gets a lazily assigned per-thread shard.
    pub fn record_from(&self, worker: Option<usize>, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let t_ns = self.start.elapsed().as_nanos() as u64;
        let shard = worker.map_or_else(Self::thread_shard, |w| w % SHARDS);
        self.shards[shard]
            .lock()
            .push(TimedEvent { seq, t_ns, event });
    }

    /// Round-robin shard assignment for threads outside the worker pool,
    /// cached in a thread-local (no per-event formatting or hashing).
    fn thread_shard() -> usize {
        use ft_sync::atomic::AtomicUsize;
        use std::cell::Cell;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        SHARD.with(|c| {
            let cached = c.get();
            if cached != usize::MAX {
                return cached;
            }
            // ord: Relaxed — shard-id allocator; uniqueness comes from
            // the RMW, no ordering with other state is needed.
            let s = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(s);
            s
        })
    }

    /// All events, in the total order of emission (by sequence number).
    ///
    /// Allocates exactly once: shard lengths are summed first, then each
    /// shard is copied into the pre-sized buffer under its own lock (no
    /// per-shard intermediate `Vec`s). Events recorded concurrently with
    /// the two passes may or may not appear — same snapshot semantics as
    /// before — and the buffer only grows if a shard grew in between.
    pub fn events(&self) -> Vec<TimedEvent> {
        let total: usize = self.shards.iter().map(|s| s.lock().len()).sum();
        let mut all: Vec<TimedEvent> = Vec::with_capacity(total);
        for s in &self.shards {
            all.extend_from_slice(&s.lock());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events concerning one task key, in emission order.
    pub fn events_for(&self, key: Key) -> Vec<TimedEvent> {
        self.events()
            .into_iter()
            .filter(|e| match e.event {
                Event::Inserted { key: k }
                | Event::Computed { key: k, .. }
                | Event::Completed { key: k, .. }
                | Event::Notified { key: k, .. }
                | Event::DuplicateNotify { key: k, .. }
                | Event::Injected { key: k, .. }
                | Event::RecoveryStarted { key: k, .. }
                | Event::RecoverySuppressed { key: k, .. }
                | Event::Reset { key: k, .. } => k == key,
                Event::FaultObserved { source, .. } => source == key,
            })
            .collect()
    }

    /// Render a human-readable log (debugging aid).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!("#{:<6} {:>12}ns  {:?}\n", e.seq, e.t_ns, e.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_events() {
        let t = Trace::new();
        t.record(Event::Inserted { key: 1 });
        t.record(Event::Computed { key: 1, life: 1 });
        t.record(Event::Completed { key: 1, life: 1 });
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(evs[0].event, Event::Inserted { key: 1 });
    }

    #[test]
    fn events_for_filters_by_key() {
        let t = Trace::new();
        t.record(Event::Inserted { key: 1 });
        t.record(Event::Inserted { key: 2 });
        t.record(Event::FaultObserved {
            source: 1,
            kind: FaultKind::Descriptor,
        });
        assert_eq!(t.events_for(1).len(), 2);
        assert_eq!(t.events_for(2).len(), 1);
        assert_eq!(t.events_for(3).len(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let t = std::sync::Arc::new(Trace::new());
        std::thread::scope(|s| {
            for w in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..100 {
                        t.record(Event::Computed {
                            key: w * 100 + i,
                            life: 1,
                        });
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
        assert!(!t.is_empty());
    }

    #[test]
    fn events_allocates_exactly_once() {
        let t = Trace::new();
        // Spread events across every shard, unevenly.
        for w in 0..(SHARDS * 3) {
            t.record_from(Some(w % SHARDS), Event::Inserted { key: w as Key });
        }
        t.record_from(Some(0), Event::Computed { key: 0, life: 1 });
        let evs = t.events();
        assert_eq!(evs.len(), SHARDS * 3 + 1);
        assert_eq!(
            evs.capacity(),
            evs.len(),
            "events() must pre-size from the summed shard lengths, \
             not grow through per-shard collects"
        );
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn render_contains_events() {
        let t = Trace::new();
        t.record(Event::Reset { key: 7, life: 2 });
        let s = t.render();
        assert!(s.contains("Reset"));
        assert!(s.contains("key: 7"));
    }
}
