//! Sequential reference executor.
//!
//! Executes a task graph on the calling thread in a topological order
//! derived from the predecessor function. Used to (a) measure `T1` — "the
//! time it takes to execute the task graph on a single processor" — for the
//! Figure 4 speedup curves, and (b) produce reference results against which
//! the parallel schedulers' outputs are verified (Theorem 1: "the task
//! graph execution produces the same result with and without faults").

use crate::fault::Fault;
use crate::graph::{ComputeCtx, Key, TaskGraph};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Result of a sequential execution.
#[derive(Debug, Clone)]
pub struct SeqReport {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock time of the execution (compute only, after discovery).
    pub elapsed: Duration,
}

/// Discover every task reachable from the sink via predecessors.
///
/// Returns the tasks in reverse-discovery order (unspecified); use
/// [`topo_order`] for a dependence-respecting order.
pub fn discover(graph: &dyn TaskGraph) -> Vec<Key> {
    let mut seen: HashMap<Key, ()> = HashMap::new();
    let mut stack = vec![graph.sink()];
    seen.insert(graph.sink(), ());
    let mut out = Vec::new();
    while let Some(k) = stack.pop() {
        out.push(k);
        for p in graph.predecessors(k) {
            if seen.insert(p, ()).is_none() {
                stack.push(p);
            }
        }
    }
    out
}

/// Kahn topological order over the tasks reachable from the sink.
///
/// Panics if the graph has a dependence cycle (the contract requires a DAG).
pub fn topo_order(graph: &dyn TaskGraph) -> Vec<Key> {
    let tasks = discover(graph);
    let mut indegree: HashMap<Key, usize> = HashMap::with_capacity(tasks.len());
    for &k in &tasks {
        indegree.insert(k, graph.predecessors(k).len());
    }
    // successors() may mention tasks outside the reachable set; restrict to
    // discovered tasks via the indegree map.
    let mut ready: VecDeque<Key> = tasks.iter().copied().filter(|k| indegree[k] == 0).collect();
    let mut order = Vec::with_capacity(tasks.len());
    while let Some(k) = ready.pop_front() {
        order.push(k);
        for s in graph.successors(k) {
            if let Some(d) = indegree.get_mut(&s) {
                *d -= 1;
                if *d == 0 {
                    ready.push_back(s);
                }
            }
        }
    }
    assert_eq!(
        order.len(),
        tasks.len(),
        "task graph contains a cycle (or successors() is inconsistent with predecessors())"
    );
    order
}

/// Execute the graph sequentially. Any compute fault is returned
/// immediately (the sequential executor, like the baseline scheduler, has
/// no recovery path).
pub fn run(graph: &dyn TaskGraph) -> Result<SeqReport, Fault> {
    let order = topo_order(graph);
    let start = Instant::now();
    let ctx = ComputeCtx::new(1, false, None);
    for &k in &order {
        graph.compute(k, &ctx)?;
    }
    Ok(SeqReport {
        tasks: order.len(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Diamond {
        order: Mutex<Vec<Key>>,
    }
    impl TaskGraph for Diamond {
        fn sink(&self) -> Key {
            3
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            match k {
                0 => vec![],
                1 | 2 => vec![0],
                3 => vec![1, 2],
                _ => unreachable!(),
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            match k {
                0 => vec![1, 2],
                1 | 2 => vec![3],
                3 => vec![],
                _ => unreachable!(),
            }
        }
        fn compute(&self, k: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            self.order.lock().push(k);
            Ok(())
        }
    }

    #[test]
    fn discovers_all_tasks() {
        let g = Diamond {
            order: Mutex::new(vec![]),
        };
        let mut d = discover(&g);
        d.sort();
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topo_order_respects_dependences() {
        let g = Diamond {
            order: Mutex::new(vec![]),
        };
        let order = topo_order(&g);
        let pos: HashMap<Key, usize> = order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        assert!(pos[&0] < pos[&1]);
        assert!(pos[&0] < pos[&2]);
        assert!(pos[&1] < pos[&3]);
        assert!(pos[&2] < pos[&3]);
    }

    #[test]
    fn run_executes_everything_in_order() {
        let g = Diamond {
            order: Mutex::new(vec![]),
        };
        let report = run(&g).unwrap();
        assert_eq!(report.tasks, 4);
        let order = g.order.lock();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn run_propagates_compute_fault() {
        struct Bad;
        impl TaskGraph for Bad {
            fn sink(&self) -> Key {
                0
            }
            fn predecessors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn successors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                Err(Fault::data(0))
            }
        }
        assert!(run(&Bad).is_err());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        struct Cyclic;
        impl TaskGraph for Cyclic {
            fn sink(&self) -> Key {
                0
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                vec![(k + 1) % 2]
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                vec![(k + 1) % 2]
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                Ok(())
            }
        }
        topo_order(&Cyclic);
    }
}
