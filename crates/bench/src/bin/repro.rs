//! `repro` — regenerate every table and figure of the SC14 evaluation.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   table1        graph statistics (tasks, edges, critical path) per benchmark
//!   fig4          speedup: baseline vs FT-enabled, no faults, thread sweep
//!   fig5a         overhead: constant work loss, before/after compute × task type
//!   fig5b         overhead: 2% and 5% work loss, v=rand
//!   small-counts  overhead for 1, 8, 64 task re-executions (Section VI-B text)
//!   table2        after-notify re-execution statistics per task type
//!   fig6          after-notify recovery overheads
//!   fig7          overhead vs thread count (constant loss and 5% loss)
//!   ablation      FW one-version vs two-version recovery cost
//!   reuse         single-assignment vs memory-reuse strategies per benchmark
//!   bound         Section V / Theorem 2: completion-time bound vs measured
//!   validate      correctness gauntlet: every app x phase x class, verified
//!   all           everything above (except validate)
//!
//! options:
//!   --apps lcs,sw,fw,lu,cholesky   benchmarks to run (default: all five)
//!   --threads 1,2,4,8              thread counts for sweeps (default: 1,2,4,<cores>)
//!   --reps N                       repetitions per measurement (default 5)
//!   --loss N                       constant-loss task count (default 32; paper: 512)
//!   --quick                        quarter-size configs, reps<=3
//!   --out DIR                      JSON output directory (default results/)
//! ```

use ft_apps::{AppConfig, VersionClass};
use ft_bench::report::{fmt_pct, fmt_time};
use ft_bench::{make_app, measure, run_baseline, run_ft, AppKind, ExperimentReport};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::analysis;
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::seq;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

#[derive(Clone)]
struct Opts {
    apps: Vec<AppKind>,
    threads: Vec<usize>,
    reps: usize,
    loss: usize,
    quick: bool,
    out: PathBuf,
}

impl Opts {
    fn parse(args: &[String]) -> (String, Opts) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut opts = Opts {
            apps: vec![
                AppKind::Lcs,
                AppKind::Lu,
                AppKind::Cholesky,
                AppKind::Fw,
                AppKind::Sw,
            ],
            threads: {
                let mut t = vec![1, 2, 4];
                if cores > 4 {
                    t.push(cores.min(44));
                }
                t
            },
            reps: 5,
            loss: 32,
            quick: false,
            out: PathBuf::from("results"),
        };
        let mut cmd = String::from("all");
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--apps" => {
                    i += 1;
                    opts.apps = args[i]
                        .split(',')
                        .map(|s| AppKind::parse(s).unwrap_or_else(|| panic!("unknown app {s}")))
                        .collect();
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args[i]
                        .split(',')
                        .map(|s| s.parse().expect("thread count"))
                        .collect();
                }
                "--reps" => {
                    i += 1;
                    opts.reps = args[i].parse().expect("reps");
                }
                "--loss" => {
                    i += 1;
                    opts.loss = args[i].parse().expect("loss");
                }
                "--quick" => {
                    opts.quick = true;
                    opts.reps = opts.reps.min(3);
                }
                "--out" => {
                    i += 1;
                    opts.out = PathBuf::from(&args[i]);
                }
                other if !other.starts_with("--") => cmd = other.to_string(),
                other => panic!("unknown option {other}"),
            }
            i += 1;
        }
        (cmd, opts)
    }

    fn config(&self, kind: AppKind) -> AppConfig {
        let c = kind.default_config();
        if self.quick {
            AppConfig::new(c.n / 2, c.b / 2)
        } else {
            c
        }
    }

    fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = Opts::parse(&args);
    let reports = match cmd.as_str() {
        "table1" => vec![table1(&opts)],
        "fig4" => vec![fig4(&opts)],
        "fig5a" => vec![fig5a(&opts)],
        "fig5b" => vec![fig5b(&opts)],
        "small-counts" => vec![small_counts(&opts)],
        "table2" => vec![table2_fig6(&opts).0],
        "fig6" => vec![table2_fig6(&opts).1],
        "fig7" => vec![fig7(&opts)],
        "ablation" => vec![ablation(&opts)],
        "reuse" => vec![reuse(&opts)],
        "bound" => vec![bound(&opts)],
        "validate" => vec![validate(&opts)],
        "all" => {
            let mut v = vec![
                table1(&opts),
                fig4(&opts),
                fig5a(&opts),
                fig5b(&opts),
                small_counts(&opts),
            ];
            let (t2, f6) = table2_fig6(&opts);
            v.push(t2);
            v.push(f6);
            v.push(fig7(&opts));
            v.push(ablation(&opts));
            v.push(reuse(&opts));
            v.push(bound(&opts));
            v
        }
        other => {
            eprintln!("unknown experiment '{other}'; see source header for usage");
            std::process::exit(2);
        }
    };
    for r in &reports {
        println!("{}", r.render());
        if let Err(e) = r.save_json(&opts.out) {
            eprintln!("warning: could not save {} JSON: {e}", r.id);
        }
        if let Err(e) = r.save_csv(&opts.out) {
            eprintln!("warning: could not save {} CSV: {e}", r.id);
        }
    }
}

/// Table I: graph statistics per benchmark — measured at harness scale and
/// validated against the paper's closed-form counts at paper scale.
fn table1(opts: &Opts) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "table1",
        "graph statistics (harness scale) + paper-scale formula checks",
        &["bench", "N", "B", "T", "E", "S", "maxdeg", "T/S"],
    );
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        let app = make_app(kind, cfg);
        let graph: Arc<dyn nabbit_ft::TaskGraph> = app;
        let s = analysis::graph_stats(graph.as_ref());
        r.push_row(
            kind.name(),
            vec![
                cfg.n.to_string(),
                cfg.b.to_string(),
                s.tasks.to_string(),
                s.edges.to_string(),
                s.critical_path.to_string(),
                s.max_degree().to_string(),
                format!("{:.1}", s.avg_parallelism()),
            ],
        );
    }
    let lu80 = 80usize * 81 * 161 / 6;
    let chol80: usize = (0..80)
        .map(|k| {
            let m = 80 - k - 1;
            1 + m + m * (m + 1) / 2
        })
        .sum();
    r.note(format!(
        "paper-scale checks: LU nb=80 T={lu80} (paper 173880), Cholesky nb=80 T={chol80} \
         (paper 88560), FW nb=40 T={} (paper 64000), LCS nb=256 T=65536 E=195585",
        40 * 40 * 40
    ));
    r.note("paper S counts hops where ours counts tasks (off-by-one on wavefronts)");
    r
}

/// Fig. 4: speedup of baseline vs FT-enabled, no faults.
fn fig4(opts: &Opts) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "fig4",
        "speedup without faults: baseline vs FT support",
        &[
            "bench", "P", "seq(s)", "base(s)", "ft(s)", "base-spd", "ft-spd", "ft-ovh",
        ],
    );
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        let seq_stats = measure(opts.reps, || {
            let app = make_app(kind, cfg);
            let graph: Arc<dyn nabbit_ft::TaskGraph> = app;
            seq::run(graph.as_ref()).expect("sequential run");
        });
        for &p in &opts.threads {
            let pool = Pool::new(PoolConfig::with_threads(p));
            let base = measure(opts.reps, || {
                let app = make_app(kind, cfg);
                assert!(run_baseline(&pool, app).sink_completed);
            });
            let ft = measure(opts.reps, || {
                let app = make_app(kind, cfg);
                assert!(run_ft(&pool, app, FaultPlan::none()).sink_completed);
            });
            r.push_row(
                kind.name(),
                vec![
                    p.to_string(),
                    fmt_time(&seq_stats),
                    fmt_time(&base),
                    fmt_time(&ft),
                    format!("{:.2}x", seq_stats.mean / base.mean),
                    format!("{:.2}x", seq_stats.mean / ft.mean),
                    fmt_pct(ft.overhead_pct(&base)),
                ],
            );
        }
    }
    r.note("paper shape: FT ≈ baseline (within noise); FW ~10% slower due to two versions");
    r
}

/// One fault-injection overhead scenario.
struct FaultScenario {
    label: String,
    class: VersionClass,
    phase: Phase,
    count: CountSpec,
}

#[derive(Clone, Copy)]
enum CountSpec {
    Const(usize),
    Pct(f64),
}

fn run_fault_scenarios(
    opts: &Opts,
    scenarios: &[FaultScenario],
    id: &str,
    title: &str,
) -> (ExperimentReport, BTreeMap<(String, String), Vec<u64>>) {
    let mut r = ExperimentReport::new(
        id,
        title,
        &[
            "bench",
            "scenario",
            "faults",
            "ft0(s)",
            "faulty(s)",
            "ovh",
            "re-exec(avg)",
        ],
    );
    let mut reexec_samples: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let p = opts.max_threads();
    let pool = Pool::new(PoolConfig::with_threads(p));
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        let ft0 = measure(opts.reps, || {
            let app = make_app(kind, cfg);
            assert!(run_ft(&pool, app, FaultPlan::none()).sink_completed);
        });
        for sc in scenarios {
            let probe = make_app(kind, cfg);
            let mut candidates = probe.tasks_of_class(sc.class);
            // After-notify faults on the sink are unobservable inside a run.
            if sc.phase == Phase::AfterNotify {
                let sink = probe.sink();
                candidates.retain(|&k| k != sink);
            }
            let total_tasks = probe.all_tasks().len();
            drop(probe);
            let count = match sc.count {
                CountSpec::Const(c) => c.min(candidates.len()),
                CountSpec::Pct(f) => (((total_tasks as f64) * f) as usize).min(candidates.len()),
            };
            let mut reexecs = Vec::with_capacity(opts.reps);
            let mut seed = 0u64;
            let faulty = measure(opts.reps, || {
                seed += 1;
                let app = make_app(kind, cfg);
                let plan = FaultPlan::sample(&candidates, count, sc.phase, seed);
                let report = run_ft(&pool, app, plan);
                assert!(report.sink_completed, "{} {}", kind.name(), sc.label);
                reexecs.push(report.re_executions);
            });
            let reexec_avg = reexecs.iter().sum::<u64>() as f64 / reexecs.len().max(1) as f64;
            reexec_samples.insert((kind.name().to_string(), sc.label.clone()), reexecs);
            r.push_row(
                kind.name(),
                vec![
                    sc.label.clone(),
                    count.to_string(),
                    fmt_time(&ft0),
                    fmt_time(&faulty),
                    fmt_pct(faulty.overhead_pct(&ft0)),
                    format!("{reexec_avg:.0}"),
                ],
            );
        }
    }
    r.note(format!("threads = {p}, reps = {}", opts.reps));
    (r, reexec_samples)
}

/// Fig. 5(a): constant loss, before/after compute × task type.
fn fig5a(opts: &Opts) -> ExperimentReport {
    let scenarios: Vec<FaultScenario> = [
        ("before,v=0", VersionClass::First, Phase::BeforeCompute),
        ("after,v=0", VersionClass::First, Phase::AfterCompute),
        ("before,v=rand", VersionClass::Rand, Phase::BeforeCompute),
        ("after,v=rand", VersionClass::Rand, Phase::AfterCompute),
        ("before,v=last", VersionClass::Last, Phase::BeforeCompute),
        ("after,v=last", VersionClass::Last, Phase::AfterCompute),
    ]
    .into_iter()
    .map(|(l, c, ph)| FaultScenario {
        label: l.to_string(),
        class: c,
        phase: ph,
        count: CountSpec::Const(opts.loss),
    })
    .collect();
    let (mut r, _) = run_fault_scenarios(
        opts,
        &scenarios,
        "fig5a",
        "recovery overhead: constant loss, phase × task type",
    );
    r.note(format!(
        "paper: 512 lost tasks (<1% of T) → ≤0.96% overhead; here loss={} tasks",
        opts.loss
    ));
    r.note("paper shape: before-compute ≈ 0 overhead; after-compute small but visible");
    r
}

/// Fig. 5(b): 2% and 5% of tasks re-executed, v=rand.
fn fig5b(opts: &Opts) -> ExperimentReport {
    let scenarios: Vec<FaultScenario> = [
        ("2%,before", 0.02, Phase::BeforeCompute),
        ("2%,after", 0.02, Phase::AfterCompute),
        ("5%,before", 0.05, Phase::BeforeCompute),
        ("5%,after", 0.05, Phase::AfterCompute),
    ]
    .into_iter()
    .map(|(l, f, ph)| FaultScenario {
        label: l.to_string(),
        class: VersionClass::Rand,
        phase: ph,
        count: CountSpec::Pct(f),
    })
    .collect();
    let (mut r, _) = run_fault_scenarios(
        opts,
        &scenarios,
        "fig5b",
        "recovery overhead: 2% and 5% work loss (v=rand)",
    );
    r.note("paper shape: ≤3.6% overhead at 2% loss, ≤8.2% at 5% loss; ∝ work lost");
    r
}

/// Section VI-B text: 1, 8, 64 task re-executions — no significant overhead.
fn small_counts(opts: &Opts) -> ExperimentReport {
    let scenarios: Vec<FaultScenario> = [1usize, 8, 64]
        .into_iter()
        .map(|c| FaultScenario {
            label: format!("after,{c} tasks"),
            class: VersionClass::Rand,
            phase: Phase::AfterCompute,
            count: CountSpec::Const(c),
        })
        .collect();
    let (mut r, _) = run_fault_scenarios(
        opts,
        &scenarios,
        "small-counts",
        "recovery overhead for 1/8/64 task failures",
    );
    r.note("paper: no statistically significant overhead for ≤64 task failures");
    r
}

/// Table II + Fig. 6: after-notify faults per task type.
fn table2_fig6(opts: &Opts) -> (ExperimentReport, ExperimentReport) {
    let mut scenarios: Vec<FaultScenario> = [
        ("v=0", VersionClass::First),
        ("v=last", VersionClass::Last),
        ("v=rand", VersionClass::Rand),
    ]
    .into_iter()
    .map(|(l, c)| FaultScenario {
        label: l.to_string(),
        class: c,
        phase: Phase::AfterNotify,
        count: CountSpec::Const(opts.loss),
    })
    .collect();
    scenarios.push(FaultScenario {
        label: "2%,v=rand".to_string(),
        class: VersionClass::Rand,
        phase: Phase::AfterNotify,
        count: CountSpec::Pct(0.02),
    });
    scenarios.push(FaultScenario {
        label: "5%,v=rand".to_string(),
        class: VersionClass::Rand,
        phase: Phase::AfterNotify,
        count: CountSpec::Pct(0.05),
    });
    let (fig6, samples) = run_fault_scenarios(
        opts,
        &scenarios,
        "fig6",
        "after-notify recovery overheads per task type",
    );
    let mut t2 = ExperimentReport::new(
        "table2",
        "re-executed tasks under after-notify faults",
        &["bench", "scenario", "avg", "min", "max", "std"],
    );
    for ((bench, scenario), reexecs) in &samples {
        let s = ft_bench::measure::count_stats(reexecs);
        t2.push_row(
            bench.clone(),
            vec![
                scenario.clone(),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.min),
                format!("{:.0}", s.max),
                format!("{:.0}", s.std),
            ],
        );
    }
    t2.note("paper shape: v=last ≫ v=0 for LU/Cholesky/SW (chains); LCS flat across types");
    t2.note("after-notify faults may be partially unobserved (fewer re-execs than planned)");
    (t2, fig6)
}

/// Fig. 7: overhead vs thread count for constant loss and 5% loss.
fn fig7(opts: &Opts) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "fig7",
        "recovery overhead vs thread count (after-compute, v=rand)",
        &["bench", "P", "scenario", "ft0(s)", "faulty(s)", "ovh"],
    );
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        let probe = make_app(kind, cfg);
        let candidates = probe.tasks_of_class(VersionClass::Rand);
        let total = probe.all_tasks().len();
        drop(probe);
        for &p in &opts.threads {
            let pool = Pool::new(PoolConfig::with_threads(p));
            let ft0 = measure(opts.reps, || {
                let app = make_app(kind, cfg);
                assert!(run_ft(&pool, app, FaultPlan::none()).sink_completed);
            });
            for (label, count) in [
                ("const", opts.loss.min(candidates.len())),
                ("5%", ((total as f64 * 0.05) as usize).min(candidates.len())),
            ] {
                let mut seed = p as u64 * 1000;
                let faulty = measure(opts.reps, || {
                    seed += 1;
                    let app = make_app(kind, cfg);
                    let plan = FaultPlan::sample(&candidates, count, Phase::AfterCompute, seed);
                    assert!(run_ft(&pool, app, plan).sink_completed);
                });
                r.push_row(
                    kind.name(),
                    vec![
                        p.to_string(),
                        label.to_string(),
                        fmt_time(&ft0),
                        fmt_time(&faulty),
                        fmt_pct(faulty.overhead_pct(&ft0)),
                    ],
                );
            }
        }
    }
    r.note("paper shape: constant loss flat in P; 5% loss overhead grows with P");
    r.note("(serial re-execution chains limit recovery concurrency)");
    r
}

/// Section VI strategy comparison: single-assignment vs memory reuse.
/// The paper used reuse for SW/FW/LU/Cholesky ("resulted in improved
/// performance") while expecting *lower FT overheads* for
/// single-assignment; this experiment shows both effects.
fn reuse(opts: &Opts) -> ExperimentReport {
    use ft_apps::cholesky::Cholesky;
    use ft_apps::fw::Fw;
    use ft_apps::lu::Lu;
    use ft_apps::sw::Sw;
    use ft_apps::BenchApp;
    let mut r = ExperimentReport::new(
        "reuse-strategies",
        "single-assignment vs memory reuse: fault-free time and v=last recovery",
        &[
            "bench",
            "strategy",
            "faults",
            "ft0(s)",
            "faulty(s)",
            "ovh",
            "re-exec(avg)",
        ],
    );
    let p = opts.max_threads();
    let pool = Pool::new(PoolConfig::with_threads(p));
    let faults = (opts.loss / 4).max(1);
    type AppCtor = Box<dyn Fn() -> Arc<dyn BenchApp>>;
    let entries: Vec<(&str, &str, AppCtor)> = vec![
        ("SW", "reuse", {
            let c = opts.config(AppKind::Sw);
            Box::new(move || Arc::new(Sw::new(c)) as _)
        }),
        ("SW", "single-assign", {
            let c = opts.config(AppKind::Sw);
            Box::new(move || Arc::new(Sw::single_assignment(c)) as _)
        }),
        ("FW", "reuse(2v)", {
            let c = opts.config(AppKind::Fw);
            Box::new(move || Arc::new(Fw::new(c)) as _)
        }),
        ("FW", "reuse(1v)", {
            let c = opts.config(AppKind::Fw);
            Box::new(move || Arc::new(Fw::with_single_version(c)) as _)
        }),
        ("FW", "single-assign", {
            let c = opts.config(AppKind::Fw);
            Box::new(move || Arc::new(Fw::single_assignment(c)) as _)
        }),
        ("LU", "reuse(2v)", {
            let c = opts.config(AppKind::Lu);
            Box::new(move || Arc::new(Lu::new(c)) as _)
        }),
        ("LU", "single-assign", {
            let c = opts.config(AppKind::Lu);
            Box::new(move || Arc::new(Lu::single_assignment(c)) as _)
        }),
        ("Cholesky", "reuse(2v)", {
            let c = opts.config(AppKind::Cholesky);
            Box::new(move || Arc::new(Cholesky::new(c)) as _)
        }),
        ("Cholesky", "single-assign", {
            let c = opts.config(AppKind::Cholesky);
            Box::new(move || Arc::new(Cholesky::single_assignment(c)) as _)
        }),
    ];
    for (bench, strategy, make) in entries {
        let ft0 = measure(opts.reps, || {
            assert!(run_ft(&pool, make(), FaultPlan::none()).sink_completed);
        });
        let probe = make();
        let candidates = probe.tasks_of_class(VersionClass::Last);
        drop(probe);
        let count = faults.min(candidates.len());
        let mut reexecs = Vec::new();
        let mut seed = 0u64;
        let faulty = measure(opts.reps, || {
            seed += 1;
            let plan = FaultPlan::sample(&candidates, count, Phase::AfterCompute, seed);
            let report = run_ft(&pool, make(), plan);
            assert!(report.sink_completed);
            reexecs.push(report.re_executions);
        });
        let avg = reexecs.iter().sum::<u64>() as f64 / reexecs.len() as f64;
        r.push_row(
            bench,
            vec![
                strategy.to_string(),
                count.to_string(),
                fmt_time(&ft0),
                fmt_time(&faulty),
                fmt_pct(faulty.overhead_pct(&ft0)),
                format!("{avg:.0}"),
            ],
        );
    }
    r.note("paper: reuse is faster fault-free; single-assignment recovers cheaper");
    r
}

/// Section V: evaluate the Theorem 2 completion-time bound
/// `O(T1/P + T_inf + lg(P/eps) + N*M*d + N*L(D))` against measured times.
/// The bound is asymptotic (hidden constant), so the meaningful check is
/// shape: measured time must be dominated by the bound's terms, and the
/// bound must tighten (T1/P term) as P grows for work-dominated graphs.
fn bound(opts: &Opts) -> ExperimentReport {
    use nabbit_ft::analysis::work_span;
    use nabbit_ft::scheduler::FtScheduler;
    // Cost of one synchronization operation (notify-array scan entry, join
    // decrement, steal) — ~100ns on commodity hardware; the bound's
    // contention terms are counted in this unit.
    const SYNC: f64 = 100e-9;
    let mut r = ExperimentReport::new(
        "bound",
        "Theorem 2 bound vs measured FT time (fault-free and faulty)",
        &[
            "bench",
            "P",
            "N",
            "T1(s)",
            "Tinf(s)",
            "bound(s)",
            "measured(s)",
            "ratio",
        ],
    );
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        let app = make_app(kind, cfg);
        let graph: Arc<dyn nabbit_ft::TaskGraph> = app;
        let stats = analysis::graph_stats(graph.as_ref());
        let t_seq = {
            let t = std::time::Instant::now();
            seq::run(graph.as_ref()).expect("seq run");
            t.elapsed().as_secs_f64()
        };
        let per_task = t_seq / stats.tasks as f64;
        let all_keys = seq::discover(graph.as_ref());
        for (label, count) in [("fault-free", 0usize), ("5% faults", stats.tasks / 20)] {
            for &p in &opts.threads {
                let pool = Pool::new(PoolConfig::with_threads(p));
                let app = make_app(kind, cfg);
                let candidates = app.tasks_of_class(VersionClass::Rand);
                let graph: Arc<dyn nabbit_ft::TaskGraph> = app;
                let plan = FaultPlan::sample(&candidates, count, Phase::AfterCompute, p as u64);
                let sched = FtScheduler::with_plan(graph, Arc::new(plan));
                let report = sched.run(&pool);
                assert!(report.sink_completed);
                let measured = report.elapsed.as_secs_f64();
                // N(A) from the actual run.
                let counts: std::collections::HashMap<i64, u64> =
                    sched.exec_counts().into_iter().collect();
                let n_of = |k: i64| counts.get(&k).copied().unwrap_or(1) as f64;
                let n_max = report.max_executions_one_task.max(1) as f64;
                let g = sched.graph_ref();
                // T1 = SUM N(A) * (W(com(A)) + |out(A)| * SYNC).
                let t1: f64 = all_keys
                    .iter()
                    .map(|&k| n_of(k) * (per_task + g.successors(k).len() as f64 * SYNC))
                    .sum();
                // T_inf: longest path of N(X) * W(com(X)) (work_span's span
                // term carries no notify cost).
                let (_, t_inf) = work_span(g, |_| per_task, n_of);
                // Theorem 2: T1/P + T_inf + lg(P/eps) + N*M*d + N*L(D),
                // contention terms in SYNC units.
                let d = stats.max_degree() as f64;
                let m = stats.critical_path as f64;
                let e = stats.edges as f64;
                let pf = p as f64;
                let l = (e / pf + m) * d.min(pf);
                let b = t1 / pf + t_inf + SYNC * ((pf / 0.01).log2() + n_max * m * d + n_max * l);
                r.push_row(
                    format!("{} {}", kind.name(), label),
                    vec![
                        p.to_string(),
                        format!("{n_max:.0}"),
                        format!("{t1:.3}"),
                        format!("{t_inf:.3}"),
                        format!("{b:.3}"),
                        format!("{measured:.3}"),
                        format!("{:.2}", b / measured.max(1e-9)),
                    ],
                );
            }
        }
    }
    r.note("contention terms costed at 100ns/op; bound is an upper bound up to O(1)");
    r.note("expected shape: ratio O(1), bound decreasing in P (work-dominated graphs)");
    r
}

/// Correctness gauntlet: every benchmark x phase x class with verification.
fn validate(opts: &Opts) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "validate",
        "correctness gauntlet: app x phase x task class, outputs verified",
        &["bench", "phase", "class", "faults", "re-exec", "verdict"],
    );
    let pool = Pool::new(PoolConfig::with_threads(opts.max_threads()));
    for &kind in &opts.apps {
        let cfg = opts.config(kind);
        for phase in [
            Phase::BeforeCompute,
            Phase::AfterCompute,
            Phase::AfterNotify,
        ] {
            for class in [VersionClass::First, VersionClass::Last, VersionClass::Rand] {
                let app = make_app(kind, cfg);
                let mut cand = app.tasks_of_class(class);
                if phase == Phase::AfterNotify {
                    let sink = app.sink();
                    cand.retain(|&k| k != sink);
                }
                let count = opts.loss.min(cand.len());
                let plan = FaultPlan::sample(&cand, count, phase, 4242);
                let report = run_ft(&pool, Arc::clone(&app), plan);
                let verdict = if !report.sink_completed {
                    "HUNG".to_string()
                } else {
                    match app.verify_detailed() {
                        Ok(o) if o.skipped_poisoned == 0 => "ok".to_string(),
                        Ok(o) => format!("ok ({} unobserved)", o.skipped_poisoned),
                        Err(e) => format!("FAIL: {e}"),
                    }
                };
                r.push_row(
                    kind.name(),
                    vec![
                        format!("{phase:?}"),
                        format!("{class:?}"),
                        count.to_string(),
                        report.re_executions.to_string(),
                        verdict,
                    ],
                );
            }
        }
    }
    r.note("'unobserved' = after-notify faults never revisited (expected, paper SVI-B)");
    r
}

/// Ablation: FW with one vs two retained versions under v=last faults.
fn ablation(opts: &Opts) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ablation-fw-versions",
        "FW: recovery cost with 1 vs 2 retained versions (paper kept 2)",
        &[
            "config",
            "faults",
            "ft0(s)",
            "faulty(s)",
            "ovh",
            "re-exec(avg)",
        ],
    );
    let p = opts.max_threads();
    let pool = Pool::new(PoolConfig::with_threads(p));
    for kind in [AppKind::Fw, AppKind::FwSingleVersion] {
        let cfg = opts.config(AppKind::Fw);
        let probe = make_app(kind, cfg);
        let candidates = probe.tasks_of_class(VersionClass::Last);
        drop(probe);
        let count = (opts.loss / 4).max(1).min(candidates.len());
        let ft0 = measure(opts.reps, || {
            let app = make_app(kind, cfg);
            assert!(run_ft(&pool, app, FaultPlan::none()).sink_completed);
        });
        let mut reexecs = Vec::new();
        let mut seed = 0;
        let faulty = measure(opts.reps, || {
            seed += 1;
            let app = make_app(kind, cfg);
            let plan = FaultPlan::sample(&candidates, count, Phase::AfterCompute, seed);
            let report = run_ft(&pool, app, plan);
            assert!(report.sink_completed);
            reexecs.push(report.re_executions);
        });
        let avg = reexecs.iter().sum::<u64>() as f64 / reexecs.len() as f64;
        r.push_row(
            kind.name(),
            vec![
                count.to_string(),
                fmt_time(&ft0),
                fmt_time(&faulty),
                fmt_pct(faulty.overhead_pct(&ft0)),
                format!("{avg:.0}"),
            ],
        );
    }
    r.note("expected: single-version FW re-executes far more tasks per fault");
    r
}
