//! Integration-test host crate: test targets live in the repo-root `tests/` directory.
