//! Wavefront scenario: run the real LCS and Smith-Waterman benchmarks —
//! the dynamic-programming workloads the paper's introduction motivates —
//! under a shower of injected faults, and verify the answers against
//! independent sequential references.
//!
//! Run with: `cargo run --release --example wavefront`

use ft_apps::lcs::Lcs;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::FtScheduler;
use std::sync::Arc;

fn main() {
    let pool = Pool::new(PoolConfig::with_threads(4));
    let cfg = AppConfig::new(2048, 128); // 16x16 tiles

    // --- LCS: single-assignment blocks -------------------------------
    let lcs = Arc::new(Lcs::new(cfg));
    println!(
        "LCS of two random 4-letter strings of length {} ({} tile tasks)",
        cfg.n,
        lcs.all_tasks().len()
    );
    let keys = lcs.all_tasks();
    let plan = FaultPlan::sample(&keys, 24, Phase::AfterCompute, 2026);
    let report = FtScheduler::with_plan(Arc::clone(&lcs) as _, Arc::new(plan)).run(&pool);
    println!(
        "  with 24 injected after-compute faults: {} recoveries, {} re-executions",
        report.recoveries, report.re_executions
    );
    println!("  LCS length = {}", lcs.result().expect("result available"));
    lcs.verify().expect("matches the sequential reference");
    println!("  verified against the independent rolling-array DP\n");

    // --- Smith-Waterman: memory-reuse blocks --------------------------
    let sw = Arc::new(Sw::new(cfg));
    println!(
        "Smith-Waterman local alignment, memory-reuse column blocks \
         (KeepLast(2), {} tasks)",
        sw.all_tasks().len()
    );
    // Fail producers of *last* versions: recovery must re-execute the
    // producer chains of overwritten versions.
    let last = sw.tasks_of_class(VersionClass::Last);
    let plan = FaultPlan::sample(&last, 4, Phase::AfterCompute, 7);
    let report = FtScheduler::with_plan(Arc::clone(&sw) as _, Arc::new(plan)).run(&pool);
    println!(
        "  with 4 v=last faults: {} re-executions for 4 faults \
         (chains through overwritten versions), {} overwrite faults observed",
        report.re_executions, report.overwrite_faults
    );
    println!("  best local alignment score = {}", sw.result().unwrap());
    sw.verify().expect("matches the sequential reference");
    println!("  verified against the independent rolling-array SW");
}
