//! Allocation regression tests for the hot paths.
//!
//! Since PR 8 the traversal hot path is *allocation-free* apart from the
//! task map's one value box per insert: descriptors live in the engine's
//! epoch arena, spawn closures ride inline in the 64-byte `Job` cell,
//! predecessor/notify/bit-vector small buffers are inlined, and the
//! notify drain is indexed instead of copied. These tests pin that — a
//! single reintroduced per-task allocation (a pred-list clone, a spawn
//! box, a notify `to_vec`) moves the marginal count by ≥ 1.0 and fails.
//!
//! Method: run the baseline and FT schedulers on wavefront grids of two
//! sizes under the deterministic single-threaded `ft-det` executor and a
//! counting global allocator. The *marginal* allocations per task between
//! the two sizes cancel all fixed setup costs (shard tables sized by
//! `available_parallelism`, pool state, …), and determinism makes the
//! count exactly reproducible, so a pinned per-task budget is a stable
//! assertion rather than a flaky one. The multithreaded pool variant
//! pins the scheduler-free spawn/steal machinery at exactly **zero**
//! steady-state allocations.

use ft_det::DetPool;
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Wavefront grid with an allocation-free compute, so every counted
/// allocation belongs to the traversal itself.
struct Grid {
    n: i64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn predecessors_into(&self, k: Key, out: &mut Vec<Key>) {
        // Fill the schedulers' reusable scratch directly: descriptor
        // creation pays zero allocations for the predecessor list.
        out.clear();
        let (i, j) = (k / self.n, k % self.n);
        if i > 0 {
            out.push((i - 1) * self.n + j);
        }
        if j > 0 {
            out.push(i * self.n + (j - 1));
        }
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

/// Serializes the tests in this binary: the counting allocator is global,
/// so a concurrently running test would pollute a counting window.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed) - before
}

fn run_baseline(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = BaselineScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

fn run_ft(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = FtScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

/// Marginal allocations per task between a 16×16 and a 32×32 grid.
fn marginal_per_task(run: fn(i64) -> u64) -> f64 {
    let small = run(16);
    let large = run(32);
    assert!(large > small);
    (large - small) as f64 / (32.0 * 32.0 - 16.0 * 16.0)
}

#[test]
fn traversal_allocations_are_deterministic_and_bounded() {
    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm-up runs at *every measured size* so one-time lazy init (TLS,
    // parker state, allocator size-class setup, …) is paid before anything
    // is counted. A single small warm-up is not enough: the very first run
    // at a given size occasionally pays a couple of extra process-global
    // allocations, which tripped the determinism assertion below.
    for n in [16, 32] {
        run_baseline(n);
        run_ft(n);
    }

    // Determinism: identical (graph, seed) ⇒ identical allocation counts.
    assert_eq!(
        run_baseline(16),
        run_baseline(16),
        "baseline not deterministic"
    );
    assert_eq!(run_ft(16), run_ft(16), "ft not deterministic");

    // Per-task budget. Since the PR-8 arena/inline-job rework (epoch slab
    // descriptors, inline 64-byte spawn cells, PredList/NotifyList/bitvec
    // small-buffer inlining, scratch-filled predecessor lists, indexed
    // notify drain) the only surviving per-task allocation is the task
    // map's value box — the price of lock-free seqlock reads, since values
    // must live behind stable pointers. Measured: baseline ≈ 1.03
    // allocs/task, FT ≈ 1.03 (the ~0.03 is arena chunks at one per ~300
    // descriptors plus det-queue doubling). Any new per-task allocation
    // costs ≥ +1.0, so a 1.3 budget pins the hot path at exactly one
    // allocation per task while tolerating chunk-granularity drift.
    let base = marginal_per_task(run_baseline);
    let ft = marginal_per_task(run_ft);
    assert!(
        base < 1.3,
        "baseline traversal allocates {base:.2}/task — hot-path allocation crept in"
    );
    assert!(
        ft < 1.3,
        "ft traversal allocates {ft:.2}/task — hot-path allocation crept in"
    );
}

/// The segmented injector must not allocate per push in steady state:
/// fully consumed blocks are reset and recycled through the one-slot block
/// cache, so sustained push/steal traffic reuses the same segments.
#[test]
fn injector_steady_state_allocates_nothing() {
    use ft_steal::injector::Injector;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let q: Injector<u64> = Injector::new();
    // Warm-up: enough laps that the block chain and recycle cache exist.
    for round in 0..10u64 {
        for i in 0..40 {
            q.push(round * 40 + i);
        }
        for i in 0..40 {
            assert_eq!(q.steal(), Some(round * 40 + i));
        }
    }
    // Steady state: thousands of pushes/steals crossing many block
    // boundaries — zero allocations.
    let allocs = count_allocs(|| {
        for round in 0..100u64 {
            for i in 0..40 {
                q.push(round * 40 + i);
            }
            for i in 0..40 {
                assert_eq!(q.steal(), Some(round * 40 + i));
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "injector allocated {allocs} times in steady state — block recycling broke"
    );
}

/// Batch stealing must stay allocation-free too: `steal_batch_and_pop`
/// moves surplus items straight into the destination deque (no staging
/// buffer), and a warmed deque's ring buffer is reused across laps.
#[test]
fn injector_batch_steal_steady_state_allocates_nothing() {
    use ft_steal::deque::{deque, Worker};
    use ft_steal::injector::Injector;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let q: Injector<u64> = Injector::new();
    let (w, _stealer): (Worker<u64>, _) = deque();
    let lap = |q: &Injector<u64>, w: &Worker<u64>| {
        for i in 0..40u64 {
            q.push(i);
        }
        let mut got = 0u64;
        while let Some(_v) = q.steal_batch_and_pop(w) {
            got += 1;
            while w.pop().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 40);
    };
    // Warm-up: grow the deque ring and populate the block cache.
    for _ in 0..10 {
        lap(&q, &w);
    }
    let allocs = count_allocs(|| {
        for _ in 0..100 {
            lap(&q, &w);
        }
    });
    assert_eq!(
        allocs, 0,
        "batch steal allocated {allocs} times in steady state"
    );
}

/// Steady-state spawning on the *multithreaded* pool allocates nothing:
/// inline `Job` cells, recycled injector blocks, and warmed worker deques
/// mean a full execute/spawn/steal/quiesce round trip is allocation-free.
#[test]
fn pool_steady_state_allocates_nothing() {
    use ft_steal::pool::{Executor, Job, Pool, PoolConfig};

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = Pool::new(PoolConfig::with_threads(2));
    let hits = Arc::new(AtomicU64::new(0));

    // One round: the root fans out 32 jobs through the injector; each
    // fanned job spawns one child from its worker (own-deque push), so the
    // round exercises external submission, batch stealing, worker-local
    // push/pop and the quiescence latch.
    let round = |pool: &Pool, hits: &Arc<AtomicU64>| {
        let h = Arc::clone(hits);
        pool.execute_job(Job::new(move |s| {
            for _ in 0..32 {
                let h2 = Arc::clone(&h);
                s.spawn(move |s| {
                    let h3 = Arc::clone(&h2);
                    s.spawn(move |_| {
                        h3.fetch_add(1, Ordering::Relaxed);
                    });
                    h2.fetch_add(1, Ordering::Relaxed);
                });
            }
        }));
    };

    // Warm-up: lets every worker grow its deque, fault in TLS, and fill
    // the injector's block cache. The injector index advances 32 slots
    // per round over 31-slot blocks, so the block-boundary phase cycles
    // with period 31 rounds; two full cycles guarantee every alignment
    // (hence the block-chain high-water mark) is reached before counting.
    for _ in 0..62 {
        round(&pool, &hits);
    }
    hits.store(0, Ordering::Relaxed);
    let rounds = 50u64;
    let allocs = count_allocs(|| {
        for _ in 0..rounds {
            round(&pool, &hits);
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), rounds * 64);
    assert_eq!(
        allocs, 0,
        "pool allocated {allocs} times across {rounds} warmed rounds — \
         the zero-allocation steady state regressed"
    );
}
