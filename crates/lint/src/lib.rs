//! `ft-lint` — the in-repo concurrency auditor.
//!
//! PR 4 made the scheduler's hot paths lock-free, so correctness rests on
//! hand-written `unsafe` and carefully chosen atomic orderings. This crate
//! mechanically enforces the discipline those paths depend on, with no
//! external dependencies (the workspace builds offline): a small
//! line-oriented Rust lexer ([`lexer`]) plus a rule engine.
//!
//! The rules — cataloged with rationale and examples in `docs/LINTS.md`:
//!
//! * **L1** — every `unsafe` block/fn/impl in runtime crates must be
//!   immediately preceded by a `// SAFETY:` comment (or carry a
//!   `# Safety` doc section).
//! * **L2** — every non-`SeqCst` `Ordering::*` in `crates/steal` and
//!   `crates/cmap` must be covered by an `// ord:` justification tag (see
//!   the orderings section of `docs/ALGORITHM.md`).
//! * **L3** — runtime crates import atomics through the cfg(loom)-switched
//!   `ft-sync` facade, never `std::sync::atomic` directly, so loom models
//!   exercise the shipped code paths.
//! * **L4** — any runtime file containing atomics must be claimed by an
//!   entry in `docs/LOOM_COVERAGE.toml`.
//! * **L5** — no `unwrap()`/`expect()` in `crates/core/src/scheduler/`.
//!
//! Waiver syntax: `// ft-lint: allow(L5) <reason>` on the flagged line or
//! in the comment block immediately above it. The reason is mandatory and
//! waivers are reported (JSON and human output) so they stay auditable.
//! Test modules, integration tests, and benches are exempt from all rules.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;

use lexer::{has_word, lex, test_region_start, Line};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A rule violation at a file:line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`L1`..`L5`).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A suppressed finding: same span as a violation plus the stated reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier that was waived.
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number of the waived site.
    pub line: usize,
    /// The justification text after `ft-lint: allow(RULE)`.
    pub reason: String,
}

/// Outcome of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations, in file order.
    pub violations: Vec<Violation>,
    /// Waived findings, in file order.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// What to lint and where. [`Config::workspace`] is the shipped policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all other paths are relative to it.
    pub root: PathBuf,
    /// Directories whose files are runtime code (rules L1, L3, L4).
    pub runtime_dirs: Vec<PathBuf>,
    /// Directories where non-SeqCst orderings need `// ord:` tags (L2).
    pub ordering_dirs: Vec<PathBuf>,
    /// Directories where `unwrap()`/`expect()` are forbidden (L5).
    pub hot_path_dirs: Vec<PathBuf>,
    /// Loom-coverage manifest consulted by L4, relative to `root`.
    pub manifest: PathBuf,
}

impl Config {
    /// The policy for this workspace: runtime crates `steal`, `cmap`,
    /// `core`, `det`; ordering discipline in the two lock-free crates; the
    /// scheduler hot path; `docs/LOOM_COVERAGE.toml` as the L4 manifest.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            runtime_dirs: [
                "crates/steal/src",
                "crates/cmap/src",
                "crates/core/src",
                "crates/det/src",
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
            ordering_dirs: ["crates/steal/src", "crates/cmap/src"]
                .iter()
                .map(PathBuf::from)
                .collect(),
            hot_path_dirs: vec![PathBuf::from("crates/core/src/scheduler")],
            manifest: PathBuf::from("docs/LOOM_COVERAGE.toml"),
        }
    }
}

/// Lint everything named by `config`.
pub fn run(config: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let manifest_paths = read_manifest_paths(&config.root.join(&config.manifest));
    let mut files = Vec::new();
    for dir in &config.runtime_dirs {
        collect_rs_files(&config.root.join(dir), &mut files)?;
    }
    files.sort();
    files.dedup();
    for path in files {
        let rel = relative_to(&path, &config.root);
        let src = std::fs::read_to_string(&path)?;
        let in_ordering = dir_match(&rel, &config.ordering_dirs);
        let in_hot_path = dir_match(&rel, &config.hot_path_dirs);
        lint_file(
            &rel,
            &src,
            in_ordering,
            in_hot_path,
            &manifest_paths,
            &mut report,
        );
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Lint one file's source. Exposed for fixture tests; `rel` is the path
/// reported in spans, `manifest_paths` the claimed L4 entries.
pub fn lint_file(
    rel: &str,
    src: &str,
    in_ordering_dir: bool,
    in_hot_path_dir: bool,
    manifest_paths: &[String],
    report: &mut Report,
) {
    let lines = lex(src);
    let test_start = test_region_start(&lines).unwrap_or(lines.len());
    let code = &lines[..test_start];

    let mut uses_atomics = false;
    let mut ord_covered = false;
    for (idx, line) in code.iter().enumerate() {
        if line.comment.contains("ord:") {
            ord_covered = true;
        }

        // L3: direct atomic imports bypass the loom-switched facade.
        if line.code.contains("std::sync::atomic") || line.code.contains("core::sync::atomic") {
            uses_atomics = true;
            emit(
                report,
                &lines,
                idx,
                "L3",
                rel,
                format!(
                    "direct atomic import bypasses the ft-sync facade \
                     (use `ft_sync::atomic`, which switches to loom under \
                     `--cfg loom`): `{}`",
                    line.code.trim()
                ),
            );
        }
        if line.code.contains("ft_sync::atomic") {
            uses_atomics = true;
        }

        // L1: unsafe must be justified by an adjacent SAFETY comment.
        if has_word(&line.code, "unsafe") {
            let above = block_comment_above(&lines, idx);
            let here = &line.comment;
            let justified =
                above.contains("SAFETY:") || above.contains("# Safety") || here.contains("SAFETY:");
            if !justified {
                emit(
                    report,
                    &lines,
                    idx,
                    "L1",
                    rel,
                    format!(
                        "`unsafe` without an immediately preceding \
                         `// SAFETY:` comment stating the invariant: `{}`",
                        line.code.trim()
                    ),
                );
            }
        }

        // L2: non-SeqCst orderings need an `// ord:` justification tag
        // covering the contiguous run of atomic accesses.
        let orderings = ordering_tokens(&line.code);
        if !orderings.is_empty() {
            let weak: Vec<&str> = orderings
                .iter()
                .copied()
                .filter(|o| *o != "SeqCst")
                .collect();
            if in_ordering_dir && !weak.is_empty() && !ord_covered {
                emit(
                    report,
                    &lines,
                    idx,
                    "L2",
                    rel,
                    format!(
                        "non-SeqCst ordering without an `// ord:` \
                         justification tag (see docs/ALGORITHM.md \
                         \"Ordering discipline\"): Ordering::{}",
                        weak.join(", Ordering::")
                    ),
                );
            }
        } else {
            // A statement-ending code line with no atomic access closes
            // the run an `// ord:` tag covers; mid-statement continuation
            // lines (method chains) keep it open.
            let t = line.code.trim_end();
            if !t.trim().is_empty() && (t.ends_with(';') || t.ends_with('{') || t.ends_with('}')) {
                ord_covered = false;
            }
        }

        // L5: scheduler hot paths must propagate errors, not abort.
        if in_hot_path_dir && (line.code.contains(".unwrap()") || line.code.contains(".expect(")) {
            emit(
                report,
                &lines,
                idx,
                "L5",
                rel,
                format!(
                    "`unwrap()`/`expect()` in a scheduler hot path: `{}`",
                    line.code.trim()
                ),
            );
        }
    }

    // L4: files with atomics must be claimed by the loom-coverage manifest.
    if uses_atomics && !manifest_paths.iter().any(|p| p == rel) {
        report.violations.push(Violation {
            rule: "L4",
            file: rel.to_string(),
            line: 1,
            message: format!(
                "file uses atomics but has no entry in the loom-coverage \
                 manifest (docs/LOOM_COVERAGE.toml); claim it with a \
                 `[[entry]]` whose path = \"{rel}\""
            ),
        });
    }
}

/// Record a finding, downgrading it to a waiver when one applies.
fn emit(
    report: &mut Report,
    lines: &[Line],
    idx: usize,
    rule: &'static str,
    rel: &str,
    message: String,
) {
    if let Some(reason) = waiver_reason(lines, idx, rule) {
        report.waivers.push(Waiver {
            rule,
            file: rel.to_string(),
            line: idx + 1,
            reason,
        });
    } else {
        report.violations.push(Violation {
            rule,
            file: rel.to_string(),
            line: idx + 1,
            message,
        });
    }
}

/// Text of the contiguous comment block immediately above `idx`,
/// skipping attribute-only lines (so `#[inline]` between the comment and
/// the item does not sever them).
fn block_comment_above(lines: &[Line], idx: usize) -> String {
    let mut text = String::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.is_comment_only() || l.is_attr_only() {
            let _ = write!(text, "{} ", l.comment);
        } else {
            break;
        }
    }
    text
}

/// The waiver reason for `rule` at line `idx`, if a well-formed
/// `ft-lint: allow(RULE) <reason>` comment covers it (same line or in the
/// comment block immediately above). A waiver without a reason is invalid
/// and does not suppress.
fn waiver_reason(lines: &[Line], idx: usize, rule: &str) -> Option<String> {
    let needle = format!("ft-lint: allow({rule})");
    let probe = |comment: &str| -> Option<String> {
        let at = comment.find(&needle)?;
        let reason = comment[at + needle.len()..].trim();
        (!reason.is_empty()).then(|| reason.to_string())
    };
    if let Some(r) = probe(&lines[idx].comment) {
        return Some(r);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.is_comment_only() || l.is_attr_only() {
            if let Some(r) = probe(&l.comment) {
                return Some(r);
            }
        } else {
            break;
        }
    }
    None
}

/// All `Ordering::<Ident>` tokens on a code line.
fn ordering_tokens(code: &str) -> Vec<&str> {
    const KEY: &str = "Ordering::";
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(KEY) {
        let at = start + pos + KEY.len();
        let end = code[at..]
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map(|(k, _)| at + k)
            .unwrap_or(code.len());
        if end > at {
            out.push(&code[at..end]);
        }
        start = end.max(at);
    }
    out
}

/// `path = "..."` values from the loom-coverage manifest. Hand-rolled
/// (dependency-free) TOML subset: only `[[entry]]` tables with string
/// `path` keys are consulted.
fn read_manifest_paths(manifest: &Path) -> Vec<String> {
    let Ok(src) = std::fs::read_to_string(manifest) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("path") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    if let Some(end) = rest[1..].find('"') {
                        out.push(rest[1..1 + end].to_string());
                    }
                }
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (stable across platforms so
/// manifest entries and JSON output never contain backslashes).
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Is `rel` (a `/`-separated relative path) under any of `dirs`?
fn dir_match(rel: &str, dirs: &[PathBuf]) -> bool {
    dirs.iter().any(|d| {
        let d = d
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        rel == d || rel.starts_with(&format!("{d}/"))
    })
}

impl Report {
    /// Human-readable diagnostics, one finding per line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: {} {}", v.file, v.line, v.rule, v.message);
        }
        for w in &self.waivers {
            let _ = writeln!(
                out,
                "{}:{}: {} waived: {}",
                w.file, w.line, w.rule, w.reason
            );
        }
        let _ = writeln!(
            out,
            "ft-lint: {} file(s) scanned, {} violation(s), {} waiver(s)",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        );
        out
    }

    /// Machine-readable JSON (hand-rolled; no dependencies).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                v.rule,
                esc(&v.file),
                v.line,
                esc(&v.message)
            );
        }
        out.push_str("\n  ],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                w.rule,
                esc(&w.file),
                w.line,
                esc(&w.reason)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str, ordering: bool, hot: bool) -> Report {
        let mut r = Report::default();
        lint_file("test.rs", src, ordering, hot, &[], &mut r);
        r
    }

    #[test]
    fn l1_flags_bare_unsafe_and_accepts_safety() {
        let r = lint_str("fn f() { unsafe { g() } }\n", false, false);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L1");

        let ok = "// SAFETY: g is sound here because reasons.\nfn f() { unsafe { g() } }\n";
        assert!(lint_str(ok, false, false).violations.is_empty());
    }

    #[test]
    fn l1_accepts_doc_safety_section_through_attrs() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller upholds X.\n#[inline]\npub unsafe fn f() {}\n";
        assert!(lint_str(src, false, false).violations.is_empty());
    }

    #[test]
    fn l2_requires_and_honors_ord_tags() {
        let bad = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        let r = lint_str(bad, true, false);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L2");

        let ok = "fn f(a: &A) {\n    // ord: Release — publishes x to the reader's Acquire.\n    a.x.store(1, Ordering::Release);\n}\n";
        assert!(lint_str(ok, true, false).violations.is_empty());

        // SeqCst needs no tag; outside ordering dirs nothing is checked.
        assert!(lint_str(
            "fn f(a: &A) { a.x.store(1, Ordering::SeqCst); }",
            true,
            false
        )
        .violations
        .is_empty());
        assert!(lint_str(bad, false, false).violations.is_empty());
    }

    #[test]
    fn l2_tag_covers_contiguous_run_but_not_past_plain_statements() {
        let src = "fn f(a: &A) {\n    // ord: Acquire/Relaxed — cluster justified.\n    let x = a.x.load(Ordering::Acquire);\n    let y = a.y.load(Ordering::Relaxed);\n    let z = x + y;\n    a.x.store(z, Ordering::Release);\n}\n";
        let r = lint_str(src, true, false);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 6);
    }

    #[test]
    fn l2_multiline_chain_stays_covered() {
        let src = "fn f(a: &A) {\n    // ord: AcqRel success / Relaxed failure — CAS publishes.\n    let won = a\n        .x\n        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)\n        .is_ok();\n}\n";
        assert!(lint_str(src, true, false).violations.is_empty());
    }

    #[test]
    fn l3_flags_direct_import_and_facade_passes() {
        let r = lint_str("use std::sync::atomic::AtomicUsize;\n", false, false);
        assert_eq!(r.violations.len(), 2, "L3 plus unclaimed-L4");
        assert_eq!(r.violations[0].rule, "L3");
        assert_eq!(r.violations[1].rule, "L4");

        let mut r = Report::default();
        lint_file(
            "test.rs",
            "use ft_sync::atomic::AtomicUsize;\n",
            false,
            false,
            &["test.rs".to_string()],
            &mut r,
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l5_flags_unwrap_and_waiver_suppresses_with_reason() {
        let r = lint_str("fn f() { x().unwrap(); }\n", false, true);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L5");

        let waived =
            "// ft-lint: allow(L5) unreachable: x is checked above.\nfn f() { x().unwrap(); }\n";
        let r = lint_str(waived, false, true);
        assert!(r.violations.is_empty());
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, "L5");

        // A reason-less waiver does not suppress.
        let bad = "// ft-lint: allow(L5)\nfn f() { x().unwrap(); }\n";
        assert_eq!(lint_str(bad, false, true).violations.len(), 1);
    }

    #[test]
    fn rules_skip_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicUsize;\n    fn g() { unsafe { h() } }\n}\n";
        assert!(lint_str(src, true, true).violations.is_empty());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = "fn f() { let s = \"unsafe Ordering::Relaxed\"; } // unsafe\n";
        assert!(lint_str(src, true, false).violations.is_empty());
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut r = Report::default();
        lint_file(
            "a.rs",
            "fn f() { unsafe { g(\"q\\\"\") } }\n",
            false,
            false,
            &[],
            &mut r,
        );
        let json = r.render_json();
        assert!(json.contains("\"rule\": \"L1\""));
        assert!(json.contains("\"files_scanned\": 0"));
    }
}
