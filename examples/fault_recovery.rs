//! Fault recovery walkthrough: inject soft errors at each lifecycle point
//! of Section VI (before compute, after compute, after notify) into a
//! wavefront graph and watch the selective recovery machinery respond.
//!
//! Run with: `cargo run --example fault_recovery`

use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::FtScheduler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 8×8 wavefront grid; every compute does a little real work.
struct Grid {
    n: i64,
    work_done: AtomicU64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let mut acc = 1u64;
        for i in 1..2000u64 {
            acc = acc.wrapping_mul(i) ^ (acc >> 7);
        }
        std::hint::black_box(acc); // keep the busy-work from being optimized out
        self.work_done.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn run_scenario(desc: &str, plan: FaultPlan) {
    let graph = Arc::new(Grid {
        n: 8,
        work_done: AtomicU64::new(0),
    });
    let pool = Pool::new(PoolConfig::with_threads(4));
    let scheduler = FtScheduler::with_plan(Arc::clone(&graph) as _, Arc::new(plan));
    let report = scheduler.run(&pool);
    println!("{desc}:");
    println!(
        "  injected={} recoveries={} (+{} suppressed) resets={} re-executed={} \
         duplicates-absorbed={}",
        report.injected,
        report.recoveries,
        report.recoveries_suppressed,
        report.resets,
        report.re_executions,
        report.duplicate_notifications
    );
    assert!(report.sink_completed, "Lemma 3: the sink always completes");
    assert_eq!(
        graph.work_done.load(Ordering::Relaxed),
        report.computes,
        "every compute did its work"
    );
    println!(
        "  sink completed; {} total compute executions\n",
        report.computes
    );
}

fn main() {
    println!("== selective recovery under the three fault phases (Section VI) ==\n");

    run_scenario(
        "before-compute fault on task 27 (no computed work is lost)",
        FaultPlan::single(27, Phase::BeforeCompute),
    );

    run_scenario(
        "after-compute fault on task 27 (its computation is redone)",
        FaultPlan::single(27, Phase::AfterCompute),
    );

    run_scenario(
        "after-notify fault on task 27 (observed only if someone still \
         needs task 27)",
        FaultPlan::single(27, Phase::AfterNotify),
    );

    run_scenario(
        "task 27 fails on THREE consecutive incarnations (Guarantee 6: \
         failures during recovery are recursively recovered)",
        FaultPlan::new([FaultSite {
            key: 27,
            phase: Phase::AfterCompute,
            fires: 3,
        }]),
    );

    run_scenario(
        "every task in the graph fails once after compute",
        FaultPlan::new((0..64).map(|k| FaultSite::once(k, Phase::AfterCompute))),
    );

    println!("all scenarios completed with correct recovery bookkeeping");
}
