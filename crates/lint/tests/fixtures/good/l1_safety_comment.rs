//! Good fixture for L1: every unsafe site carries its justification.

// SAFETY: the caller guarantees `p` points at a live, aligned u32 for the
// duration of the call (upheld by the owning container's borrow rules).
fn deref(p: *const u32) -> u32 {
    // SAFETY: see the function-level invariant above; `p` is live here.
    unsafe { *p }
}

/// Reads a raw slot.
///
/// # Safety
/// `idx` must be in bounds of the table the caller owns.
#[inline]
pub unsafe fn read_slot(base: *const u32, idx: usize) -> u32 {
    // SAFETY: in-bounds per this function's contract.
    unsafe { *base.add(idx) }
}
