//! Integration tests for the six recovery guarantees of Section IV.
//!
//! These run the full stack — work-stealing pool, concurrent task map,
//! fault-tolerant scheduler — on a wavefront grid graph and check the
//! guarantees through the run metrics. Every run is also recorded and
//! validated by the trace oracle (Concurrent mode); an oracle violation
//! dumps the trace + fault plan as JSON under `target/oracle-failures/`.

use ft_integration::graphs::Grid;
use ft_integration::{assert_oracle_clean, traced_run_on};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::graph::Key;
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::metrics::RunReport;
use nabbit_ft::trace::oracle::OracleMode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Run with a watchdog: Lemma 3 promises the sink completes; a hang is a
/// test failure, not a timeout of the suite. Afterwards the recorded trace
/// must satisfy the guarantee oracle.
fn run_watchdog(n: i64, threads: usize, plan: FaultPlan, secs: u64) -> RunReport {
    let g = Arc::new(Grid { n });
    let plan = Arc::new(plan);
    let (tx, rx) = mpsc::channel();
    {
        let g = Arc::clone(&g);
        let plan = Arc::clone(&plan);
        std::thread::spawn(move || {
            let pool = Pool::new(PoolConfig::with_threads(threads));
            let _ = tx.send(traced_run_on(g as _, plan, &pool));
        });
    }
    let (_, trace, report) = rx
        .recv_timeout(Duration::from_secs(secs))
        .expect("run hung: Guarantee 4 / Lemma 3 violated");
    assert_oracle_clean(
        &format!("guarantees-grid{n}x{n}-t{threads}"),
        0,
        &plan,
        g.as_ref(),
        &trace,
        &report,
        OracleMode::Concurrent,
        Vec::new(),
    );
    report
}

#[test]
fn g1_each_failure_recovered_at_most_once() {
    // 64 single faults: every observed failure recovered exactly once even
    // though many threads observe each failure.
    let keys: Vec<Key> = (0..24 * 24).collect();
    let plan = FaultPlan::sample(&keys, 64, Phase::AfterCompute, 101);
    let report = run_watchdog(24, 8, plan, 120);
    assert!(report.sink_completed);
    assert_eq!(report.injected, 64);
    assert_eq!(
        report.recoveries, 64,
        "exactly one recovery per failure (observed {} suppressed)",
        report.recoveries_suppressed
    );
}

#[test]
fn g2_status_recovered_via_fresh_incarnation() {
    // A recovered task re-executes from scratch: re-executions equal the
    // number of after-compute faults.
    let plan = FaultPlan::sample(&(0..256).collect::<Vec<_>>(), 32, Phase::AfterCompute, 7);
    let report = run_watchdog(16, 4, plan, 120);
    assert!(report.sink_completed);
    assert_eq!(report.re_executions, 32);
    assert_eq!(report.distinct_tasks_executed, 256);
}

#[test]
fn g3_join_counter_decremented_exactly_once_per_predecessor() {
    // Fault-free: notifications per task = preds + 1 (self), total
    // = edges + tasks. No duplicates should occur without faults.
    let report = run_watchdog(16, 4, FaultPlan::none(), 60);
    let tasks = 256u64;
    let edges = 2 * 16 * 15u64;
    assert_eq!(report.notifications, edges + tasks);
    assert_eq!(report.duplicate_notifications, 0);
}

#[test]
fn g3_duplicates_absorbed_under_faults() {
    // With recoveries, re-traversals cause duplicate notifications; the bit
    // vector must absorb them all and the sink must still complete.
    let plan = FaultPlan::sample(&(0..576).collect::<Vec<_>>(), 128, Phase::AfterCompute, 3);
    let report = run_watchdog(24, 8, plan, 180);
    assert!(report.sink_completed);
    assert!(
        report.notifications > 0,
        "join decrements happened: {}",
        report.notifications
    );
}

#[test]
fn g4_every_waiting_task_notified_dense_faults() {
    // Every single task fails once after compute; all must be re-notified
    // through reconstructed notify arrays.
    let keys: Vec<Key> = (0..144).collect();
    let plan = FaultPlan::new(
        keys.iter()
            .map(|&k| FaultSite::once(k, Phase::AfterCompute)),
    );
    let report = run_watchdog(12, 4, plan, 180);
    assert!(report.sink_completed);
    assert_eq!(report.injected, 144);
    assert_eq!(report.re_executions, 144);
}

#[test]
fn g6_failures_during_recovery_recursively_recovered() {
    // Tasks fail on their first THREE incarnations.
    let sites = (0..100)
        .step_by(7)
        .map(|k| FaultSite {
            key: k,
            phase: Phase::AfterCompute,
            fires: 3,
        })
        .collect::<Vec<_>>();
    let n_sites = sites.len() as u64;
    let plan = FaultPlan::new(sites);
    let report = run_watchdog(10, 4, plan, 180);
    assert!(report.sink_completed);
    assert_eq!(report.injected, 3 * n_sites);
    assert_eq!(report.re_executions, 3 * n_sites);
}

#[test]
fn before_compute_faults_lose_no_work() {
    let keys: Vec<Key> = (0..256).collect();
    let plan = FaultPlan::sample(&keys, 64, Phase::BeforeCompute, 9);
    let report = run_watchdog(16, 4, plan, 120);
    assert!(report.sink_completed);
    assert_eq!(report.injected, 64);
    assert_eq!(
        report.re_executions, 0,
        "before-compute recovery must not redo computed work"
    );
}

#[test]
fn recovery_works_at_every_thread_count() {
    for threads in [1, 2, 3, 8] {
        let keys: Vec<Key> = (0..100).collect();
        let plan = FaultPlan::sample(&keys, 25, Phase::AfterCompute, threads as u64);
        let report = run_watchdog(10, threads, plan, 120);
        assert!(report.sink_completed, "threads={threads}");
        assert_eq!(report.injected, 25, "threads={threads}");
    }
}

#[test]
fn g3_ablation_bit_vector_prevents_premature_readiness() {
    // DESIGN.md ablation #3, at the descriptor level: a task A with two
    // predecessors {P, Q}; P notifies, fails, recovers, and notifies again
    // before Q ever computes. With the bit vector, the duplicate is
    // absorbed and A stays blocked on Q. Without it (raw join decrements —
    // the baseline descriptor), the join counter would hit zero and A
    // would run with Q's input missing.
    use nabbit_ft::task::{BaseDesc, FtDesc};
    use std::sync::atomic::Ordering as O;

    const P: Key = 10;
    const Q: Key = 11;

    // FT descriptor: second notification from P is absorbed.
    let a = FtDesc::new(1, 1, &[P, Q], 1);
    let notify = |pkey: Key| -> bool {
        let ind = a.pred_index(pkey).unwrap();
        if a.bits.unset(ind) {
            a.join.fetch_sub(1, O::AcqRel) - 1 == 0
        } else {
            false
        }
    };
    assert!(!notify(1), "self notification");
    assert!(!notify(P), "first P notification");
    assert!(!notify(P), "replayed P notification absorbed");
    assert_eq!(a.join.load(O::Relaxed), 1, "still waiting on Q");
    assert!(notify(Q), "Q's notification makes A ready exactly once");

    // Baseline descriptor (no bit vector): the same replay would fire A
    // prematurely — which is why the baseline scheduler cannot tolerate
    // re-notification and the FT scheduler needs Guarantee 3.
    let b = BaseDesc::new(1, &[P, Q], 1);
    let raw_notify = || b.join.fetch_sub(1, O::AcqRel) - 1 == 0;
    assert!(!raw_notify()); // self
    assert!(!raw_notify()); // P
    assert!(
        raw_notify(),
        "replayed P notification fires A with Q missing"
    );
}
