//! The policy-generic Figure-2 traversal engine.
//!
//! The paper presents fault tolerance as a *shading* of the NABBIT
//! traversal: Figure 2 shows one algorithm, with the FT additions
//! highlighted. This module encodes that literally. [`Engine`] owns the
//! single copy of `InitAndCompute` / `TryInitCompute` / `NotifyOnce` /
//! `ComputeAndNotify` / `NotifySuccessor`, and an [`FtPolicy`] supplies
//! everything the shading adds:
//!
//! * the descriptor type (via [`Descriptor`], unifying
//!   [`BaseDesc`](crate::task::BaseDesc) and
//!   [`FtDesc`](crate::task::FtDesc));
//! * the guarded-access wrappers (the paper's Cilk++ `try`/`catch`);
//! * bit-vector-gated notification (Guarantee 3);
//! * the Section-VI fault-injection probe points;
//! * the Figure-3 recovery hooks invoked from the catch blocks.
//!
//! The baseline instantiation [`Engine<NoFt>`](super::BaselineScheduler)
//! uses [`Infallible`](std::convert::Infallible) as its error type and a
//! zero-sized policy, so after monomorphization every guard is `Ok(())`,
//! every catch arm is uninhabited, and the descriptor carries no FT
//! fields — the compiled baseline is the unshaded Figure 2, matching "the
//! baseline version includes no additional data structures or statements
//! introduced for fault tolerance". The FT instantiation
//! [`Engine<FtRecovery>`](super::FtScheduler) restores every shaded line.
//!
//! Task keys and life numbers are threaded through the call stack as
//! explicit parameters rather than read back from (possibly corrupt)
//! descriptors, and each traversal step is a work-stealing job ("the
//! creation and computation of the predecessors of a given task are
//! concurrent and can be executed by different threads"). The engine asks
//! the executor for the current worker index at every step and hands it to
//! the policy, so trace shards and sharded metrics lanes are selected by
//! worker identity instead of contending cross-worker.
//!
//! # Allocation discipline (PR 8)
//!
//! The traversal hot path is allocation-free. Descriptors live in an
//! [`Arena`] owned by the engine — one epoch, one slab set — and travel as
//! `Copy` [`ArenaRef`] handles instead of `Arc`s; every job the engine
//! spawns captures ≤ 48 bytes, so the [`ft_steal::Job`] cell stores it
//! inline; predecessor lists are built through a per-thread scratch buffer
//! ([`TaskGraph::predecessors_into`]); and single-ready-successor chains
//! execute **inline** via continuation passing ([`MAX_INLINE_CHAIN`])
//! instead of a queue round-trip per task. Handle validity is epoch-scoped:
//! every job carries an `Arc<Engine>`, so the arena outlives every handle,
//! and reclamation happens when the epoch's last reference drops — after
//! quiesce (see `docs/ALGORITHM.md`, "Arena allocation & inline chains").

use crate::deadline::DeadlineMonitor;
use crate::fault::Fault;
use crate::graph::{ComputeCtx, Key, TaskGraph};
use crate::inject::Phase;
use crate::metrics::{RunMetrics, RunReport};
use crate::task::{NotifyCells, Status, Take};
use crate::trace::Event;
use ft_cmap::ShardedMap;
use ft_steal::arena::{Arena, ArenaRef};
use ft_steal::pool::{Executor, Scope};
use ft_steal::{Job, Priority};
use ft_sync::atomic::{fence, AtomicI64, Ordering};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Maps a task key to the acquisition priority of the jobs that traverse,
/// notify, or compute it. Typically derived from a DAG analysis (hard
/// tasks and their ancestors are [`Priority::High`]).
pub type PriorityFn = Arc<dyn Fn(Key) -> Priority + Send + Sync>;

/// Maximum tasks executed back-to-back by one job through the inline
/// single-successor chain before the continuation is re-enqueued.
///
/// Chaining never *hides* parallel work — every ready successor beyond the
/// chain candidate is spawned normally — but an unbounded chain would keep
/// one worker from touching its own deque indefinitely; re-enqueueing
/// every `MAX_INLINE_CHAIN` tasks gives the scheduler (and a `DetPool`
/// campaign's seeded schedule) a periodic interleaving point.
pub const MAX_INLINE_CHAIN: usize = 64;

thread_local! {
    /// Scratch buffer for predecessor lists: reused across every
    /// descriptor the thread creates, so `make_desc` allocates nothing
    /// once warm (graphs that override `predecessors_into` fill it
    /// in place).
    static PRED_SCRATCH: RefCell<Vec<Key>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the thread's predecessor scratch buffer (shared with the
/// recovery path's `ReplaceTask`).
pub(super) fn with_pred_scratch<R>(f: impl FnOnce(&mut Vec<Key>) -> R) -> R {
    PRED_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Optional scheduling behaviors threaded through the engine, orthogonal
/// to the fault-tolerance policy.
///
/// The default (`None` everywhere) is the exact pre-PR6 scheduler: every
/// job spawns at [`Priority::Normal`] and no completion times are
/// recorded.
#[derive(Clone, Default)]
pub struct SchedOpts {
    /// Priority pop order: every job the engine spawns *toward* a task
    /// key is submitted at `priority(key)`. `None` = FIFO mode.
    pub priority: Option<PriorityFn>,
    /// Completion-time probe: `record(key)` is invoked at each task's
    /// `Completed` transition (first completion wins inside the monitor).
    pub deadline: Option<Arc<DeadlineMonitor>>,
}

impl std::fmt::Debug for SchedOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedOpts")
            .field("priority", &self.priority.as_ref().map(|_| "fn"))
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// The per-task state the shared traversal needs from a descriptor,
/// whichever flavor the policy picks.
///
/// Accessors return the Section-III fields common to both descriptor
/// types; anything FT-specific (bit vector, poison flags, life bumping) is
/// reached only through the policy, so the baseline descriptor never has
/// to carry it.
pub trait Descriptor: Send + Sync + 'static {
    /// Life number of this incarnation (always 1 for the baseline).
    fn life(&self) -> u64;
    /// Ordered immediate predecessor keys, cached at creation (`Init(A)`).
    fn preds(&self) -> &[Key];
    /// Join counter (`|preds| + 1`; the +1 is the self-notification).
    fn join(&self) -> &AtomicI64;
    /// Lock-free successor notification cells (PR 9): slots claimed by
    /// registrants, scanned by this task's completion drain.
    fn notify_cells(&self) -> &NotifyCells;
    /// Store a new status.
    fn set_status(&self, s: Status);
}

/// The shaded behavior of Figure 2 — everything that differs between the
/// baseline and fault-tolerant schedulers.
///
/// Hooks come in two kinds. Guards (`check*`, `read_status`,
/// `consume_notification`) return `Result<_, Self::Err>`; the engine's
/// `?`s are the paper's `try` blocks and the `Err` arms its `catch`
/// blocks. Handlers (`on_guard_fault`, `on_compute_fault`) are the catch
/// bodies and dispatch into Figure-3 recovery. With
/// [`Err = Infallible`](std::convert::Infallible) both kinds compile to
/// nothing.
pub trait FtPolicy: Send + Sync + Sized + 'static {
    /// Descriptor type stored in the task map.
    type Desc: Descriptor;
    /// Guard error type: [`Fault`] for FT, uninhabited for the baseline.
    type Err;

    /// Build the first (life-1) incarnation of `key`'s descriptor.
    /// `scratch` is a reusable buffer for the predecessor list (filled via
    /// [`TaskGraph::predecessors_into`]).
    fn make_desc(&self, graph: &dyn TaskGraph, key: Key, scratch: &mut Vec<Key>) -> Self::Desc;

    /// Record a trace event (no-op unless the policy carries a trace).
    fn emit(&self, worker: Option<usize>, event: Event);

    /// Guarded descriptor access: fail if the descriptor is corrupt.
    fn check(d: &Self::Desc) -> Result<(), Self::Err>;

    /// Read the status field, surfacing a smashed status byte as an error.
    fn read_status(d: &Self::Desc) -> Result<Status, Self::Err>;

    /// `TryInitCompute`'s prologue guard on the predecessor `B`: corrupt
    /// descriptor or `if (B.overwritten) throw`.
    fn check_dependable(b: &Self::Desc) -> Result<(), Self::Err>;

    /// `NotifyOnce`'s gate: should this notification decrement the join
    /// counter? The FT policy unsets the bit for `pkey` and absorbs
    /// duplicates (Guarantee 3); the baseline always says yes.
    fn consume_notification(
        engine: &Engine<Self>,
        a: &Self::Desc,
        key: Key,
        pkey: Key,
        life: u64,
        worker: Option<usize>,
    ) -> Result<bool, Self::Err>;

    /// Whether a negative join counter is tolerated (only under the
    /// FT policy's mutation-testing sabotage switches).
    fn join_underflow_ok(&self) -> bool;

    /// Mutation-test switch: when true, the inline-chain notify path
    /// skips [`FtPolicy::consume_notification`] and decrements the join
    /// counter unconditionally — a deliberately broken inline shortcut
    /// (exactly the bug a careless chain implementation would have) that
    /// the G1–G6 trace oracle must flag. Default: off, i.e. correct.
    fn sabotage_chain(&self) -> bool {
        false
    }

    /// Mutation-test switch: when true (one-shot), the next notify-cell
    /// registration claims a slot but drops both the `Release` publish and
    /// the self-delivery fallback — a lost notification (exactly the bug a
    /// missing publish fence would cause) that the G3/G4 trace oracle must
    /// flag as a quiesced-but-incomplete run. Default: off, i.e. correct.
    fn sabotage_cell(&self) -> bool {
        false
    }

    /// Whether this incarnation was created by `RecoverTask` (threaded
    /// into [`ComputeCtx`] so apps can distinguish recovery executions).
    fn is_recovery_exec(d: &Self::Desc) -> bool;

    /// Section-VI fault-injection probe (before compute / after compute /
    /// after notify). No-op for the baseline.
    fn probe(engine: &Engine<Self>, a: &Self::Desc, key: Key, phase: Phase, worker: Option<usize>);

    /// The user compute returned a fault. The FT policy counts and
    /// propagates it into the catch block; the baseline panics ("the
    /// baseline scheduler has no recovery path").
    fn compute_error(engine: &Engine<Self>, f: Fault) -> Self::Err;

    /// Catch block of `TryInitCompute` / `NotifyOnce`:
    /// `RecoverTaskOnce(key, life)` on the task whose guard failed.
    fn on_guard_fault(engine: &Arc<Engine<Self>>, s: &Scope<'_>, f: Self::Err, key: Key, life: u64);

    /// Catch block of `ComputeAndNotify`: recover `A` itself, or — for a
    /// fault in an input — recover the input's producer and reset `A`.
    fn on_compute_fault(
        engine: &Arc<Engine<Self>>,
        s: &Scope<'_>,
        a: ArenaRef<Self::Desc>,
        key: Key,
        life: u64,
        f: Self::Err,
    );
}

/// The single Figure-2 traversal, generic over the fault-tolerance policy.
///
/// Use the two instantiations: [`BaselineScheduler`](super::BaselineScheduler)
/// (`Engine<NoFt>`) and [`FtScheduler`](super::FtScheduler)
/// (`Engine<FtRecovery>`). One engine instance = one run (one epoch: the
/// engine owns the arena every descriptor of the run lives in).
pub struct Engine<P: FtPolicy> {
    pub(super) graph: Arc<dyn TaskGraph>,
    /// The task map: key → current incarnation (arena handle).
    pub(super) map: ShardedMap<ArenaRef<P::Desc>>,
    /// Epoch slab: every descriptor incarnation of this run, reclaimed en
    /// masse when the engine (epoch) drops. Declared after `map` so the
    /// handles stored there are dropped first (they are `Copy`, nothing
    /// dangles either way).
    pub(super) arena: Arena<P::Desc>,
    pub(super) metrics: RunMetrics,
    pub(super) policy: P,
    pub(super) opts: SchedOpts,
}

impl<P: FtPolicy> Engine<P> {
    /// Build an engine around `policy`.
    pub(super) fn with_policy(graph: Arc<dyn TaskGraph>, policy: P) -> Arc<Self> {
        Self::with_policy_opts(graph, policy, SchedOpts::default())
    }

    /// Build an engine around `policy` with explicit scheduling options.
    pub(super) fn with_policy_opts(
        graph: Arc<dyn TaskGraph>,
        policy: P,
        opts: SchedOpts,
    ) -> Arc<Self> {
        Arc::new(Engine {
            graph,
            map: ShardedMap::new(),
            arena: Arena::new(),
            metrics: RunMetrics::new(),
            policy,
            opts,
        })
    }

    /// Acquisition priority for jobs targeting `key`.
    #[inline]
    pub(super) fn prio_of(&self, key: Key) -> Priority {
        match &self.opts.priority {
            Some(f) => f(key),
            None => Priority::Normal,
        }
    }

    /// Execute the task graph to completion on `exec`; returns run
    /// statistics.
    ///
    /// Any [`Executor`] works: the multithreaded [`ft_steal::pool::Pool`]
    /// or the deterministic single-threaded `ft-det` pool for replayable
    /// schedule exploration. Execution begins by inserting the **sink**
    /// task and invoking `InitAndCompute` on it; the traversal expands the
    /// graph bottom-up toward the sources.
    pub fn run(self: &Arc<Self>, exec: &dyn Executor) -> RunReport {
        let start = Instant::now();
        let sink = self.graph.sink();
        self.insert_if_absent(sink, None);
        // ft-lint: allow(L5) the sink was inserted on the line above and
        // nothing can remove it before the run starts; a miss here is a
        // programming error worth aborting on, not a runtime condition.
        let (sd, life) = self.get_task(sink).expect("sink just inserted");
        let this = Arc::clone(self);
        let prio = self.prio_of(sink);
        exec.execute_job(Job::new(move |scope: &Scope<'_>| {
            scope.spawn_with(prio, move |s| this.init_and_compute(s, sd, sink, life));
        }));
        self.finish_report(start)
    }

    /// Snapshot the run statistics into a [`RunReport`]: metrics counters,
    /// the sink's completion status, and the elapsed time since `start`.
    /// Shared by [`Engine::run`] and the graph service's per-instance
    /// tickets (`super::service`), which finish reports asynchronously.
    pub(super) fn finish_report(&self, start: Instant) -> RunReport {
        let mut report = self.metrics.snapshot();
        report.sink_completed = self
            .map
            .get(self.graph.sink())
            .map(|d| matches!(P::read_status(&d), Ok(Status::Completed)))
            .unwrap_or(false);
        report.elapsed = start.elapsed();
        report
    }

    /// Number of distinct task keys ever inserted (diagnostics).
    pub fn tasks_created(&self) -> usize {
        self.map.len()
    }

    /// Borrow the task graph this engine runs.
    pub fn graph_ref(&self) -> &dyn TaskGraph {
        self.graph.as_ref()
    }

    /// Whether `d` was allocated by this engine's epoch arena (per-epoch
    /// isolation diagnostics; see the service-layer tests).
    pub fn owns_desc(&self, d: ArenaRef<P::Desc>) -> bool {
        self.arena.owns(d.as_ptr())
    }

    /// Current incarnation handle for `key`, if the task was ever
    /// inserted (per-epoch isolation diagnostics; pair with
    /// [`Engine::owns_desc`]).
    pub fn desc_handle(&self, key: Key) -> Option<ArenaRef<P::Desc>> {
        self.map.get(key)
    }

    /// `InsertTaskIfAbsent`.
    pub(super) fn insert_if_absent(&self, key: Key, worker: Option<usize>) -> bool {
        let inserted = self.map.insert_if_absent(key, || {
            with_pred_scratch(|scratch| {
                self.arena
                    .alloc(self.policy.make_desc(self.graph.as_ref(), key, scratch))
            })
        });
        if inserted {
            self.policy.emit(worker, Event::Inserted { key });
        }
        inserted
    }

    /// `GetTask`: current incarnation and its life number.
    pub(super) fn get_task(&self, key: Key) -> Option<(ArenaRef<P::Desc>, u64)> {
        self.map.get(key).map(|d| {
            let life = d.life();
            (d, life)
        })
    }

    /// `InitAndCompute(A, key, life)`: traverse immediate predecessors,
    /// then self-notify (consuming the `+1` in the join counter).
    pub(super) fn init_and_compute(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        life: u64,
    ) {
        // Iterate the cached predecessor slice by reference: the hot path
        // allocates nothing per traversal.
        for &pkey in a.preds() {
            let this = Arc::clone(self);
            // Priority of the *target* (the predecessor being traversed):
            // hard tasks and their ancestors traverse ahead of soft work.
            s.spawn_with(self.prio_of(pkey), move |s| {
                this.try_init_compute(s, a, key, life, pkey)
            });
        }
        // Section VI "before compute" injection point: the task "has
        // traversed its predecessors and is waiting for one or more
        // notifications to be scheduled for execution".
        P::probe(self, &a, key, Phase::BeforeCompute, s.worker_index());
        self.notify_once(s, a, key, key, life);
    }

    /// `TryInitCompute(A, key, life, pkey)`: create/visit predecessor
    /// `pkey`; register A for notification or observe completion.
    pub(super) fn try_init_compute(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        life: u64,
        pkey: Key,
    ) {
        let inserted = self.insert_if_absent(pkey, s.worker_index());
        let Some((b, blife)) = self.get_task(pkey) else {
            debug_assert!(false, "predecessor {pkey} vanished from the task map");
            return;
        };
        if inserted {
            let this = Arc::clone(self);
            s.spawn_with(self.prio_of(pkey), move |s| {
                this.init_and_compute(s, b, pkey, blife)
            });
        }

        // try { check B; register; self-deliver if B already computed }
        let attempt: Result<bool, P::Err> = (|| {
            P::check_dependable(&b)?;
            self.register_notify(&b, key)
        })();

        match attempt {
            Ok(true) => self.notify_once(s, a, key, pkey, life),
            Ok(false) => {}
            // catch { RecoverTaskOnce(pkey, blife) }. A's published cell
            // (if the claim got that far) is inert on the corrupt
            // incarnation; B's recovery re-enqueues A via
            // ReinitNotifyEntry (A's bit for B is still set), and any
            // stale delivery from the old incarnation is absorbed by A's
            // notification bits.
            Err(f) => P::on_guard_fault(self, s, f, pkey, blife),
        }
    }

    /// Lock-free registration of successor `key` in `b`'s notify cells
    /// (PR 9). Claims a slot, publishes the key, then — after an SC fence —
    /// re-reads `b`'s status: if `b` has already computed, the drainer's
    /// scan may have missed the publish, so the registrant takes its own
    /// slot back via CAS and delivers the notification itself. Returns
    /// `Ok(true)` iff the caller must self-deliver (it won the slot).
    ///
    /// Exactly-once: the slot's `key → TAKEN` CAS has one winner, whichever
    /// side it is. No-loss (Dekker over SC fences): if the drainer's scan
    /// load missed the publish, the drainer's fence precedes the
    /// registrant's in the SC order, so this status read observes
    /// `≥ Computed` and the registrant self-delivers; conversely a
    /// registrant that reads `< Computed` has its fence first, so the
    /// drainer's scan observes the published key.
    // ft-lint: hot-path begin(notify)
    pub(super) fn register_notify(&self, b: &P::Desc, key: Key) -> Result<bool, P::Err> {
        let cells = b.notify_cells();
        let slot = cells.claim();
        if self.policy.sabotage_cell() {
            // Mutation testing: the claim happened but the publish (and
            // the self-delivery fallback) is dropped — a lost notification
            // the G3/G4 trace oracle must flag.
            return Ok(false);
        }
        cells.publish(slot, key);
        // ord: SeqCst fence — Dekker pairing with the drainer's fence after
        // its `Computed` store (see `compute_and_notify_step`).
        // sc: notify-cells/registrant
        fence(Ordering::SeqCst);
        if P::read_status(b)? >= Status::Computed {
            return Ok(cells.try_take(slot, key));
        }
        Ok(false)
    }

    /// The gate of `NotifyOnce(A, key, pkey, life)`: consume the
    /// notification and decrement the join counter. Returns `true` iff the
    /// counter hit zero — the caller owns A's compute. Guard faults are
    /// handled here (`RecoverTaskOnce`), reported as not-ready.
    fn notify_gate(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        pkey: Key,
        life: u64,
    ) -> bool {
        let worker = s.worker_index();
        let attempt: Result<bool, P::Err> = (|| {
            P::check(&a)?;
            if !P::consume_notification(self, &a, key, pkey, life, worker)? {
                return Ok(false);
            }
            self.metrics.notifications.add(worker);
            self.policy.emit(
                worker,
                Event::Notified {
                    key,
                    life,
                    pred: pkey,
                },
            );
            // ord: AcqRel — the decrement that releases this task's
            // contribution must publish its compute (Release) and the
            // winner that observes zero must see every predecessor's
            // writes (Acquire).
            let val = a.join().fetch_sub(1, Ordering::AcqRel) - 1;
            debug_assert!(
                val >= 0 || self.policy.join_underflow_ok(),
                "join counter underflow on task {key} life {life}"
            );
            Ok(val == 0)
        })();

        match attempt {
            Ok(ready) => ready,
            Err(f) => {
                P::on_guard_fault(self, s, f, key, life);
                false
            }
        }
    }

    /// `NotifyOnce(A, key, pkey, life)`: decrement the join counter (if the
    /// policy's gate consumes the notification); execute A at zero.
    pub(super) fn notify_once(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        pkey: Key,
        life: u64,
    ) {
        if self.notify_gate(s, a, key, pkey, life) {
            self.compute_and_notify(s, a, key, life);
        }
    }

    /// `ComputeAndNotify(A, key, life)`, chained: run the user compute,
    /// transition to Computed, drain the notify array, transition to
    /// Completed — then, if draining left exactly one ready successor in
    /// this job's hands, continue with it **inline** instead of paying a
    /// queue round-trip (continuation passing, bounded by
    /// [`MAX_INLINE_CHAIN`]).
    pub(super) fn compute_and_notify(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        life: u64,
    ) {
        let mut cur = Some((a, key, life));
        let mut depth = 0usize;
        while let Some((a, key, life)) = cur.take() {
            cur = self.compute_and_notify_step(s, a, key, life, depth);
            depth += 1;
        }
    }

    /// One link of the chain: compute + notify one task, returning the
    /// chain continuation (a successor made ready by this task's
    /// notifications) if there is one.
    fn compute_and_notify_step(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<P::Desc>,
        key: Key,
        life: u64,
        depth: usize,
    ) -> Option<(ArenaRef<P::Desc>, Key, u64)> {
        let worker = s.worker_index();
        let mut chain: Option<(ArenaRef<P::Desc>, Key, u64)> = None;
        let attempt: Result<(), P::Err> = (|| {
            P::check(&a)?;
            let ctx = ComputeCtx::new(life, P::is_recovery_exec(&a), worker);
            if let Err(f) = self.graph.compute(key, &ctx) {
                return Err(P::compute_error(self, f));
            }
            // The compute ran to completion: count the work (even if the
            // injection right below discards it — that is exactly the
            // "work lost" the experiments measure).
            self.metrics.record_compute(key);
            self.policy.emit(worker, Event::Computed { key, life });
            // Section VI "after compute" injection point: computed, about
            // to notify successors. The guard right below observes it.
            P::probe(self, &a, key, Phase::AfterCompute, worker);
            P::check(&a)?;
            a.set_status(Status::Computed);
            // ord: SeqCst fence — Dekker pairing with the registrant's
            // fence after its cell publish (see `register_notify`): every
            // registration this scan misses is guaranteed to observe
            // `≥ Computed` and self-deliver.
            // sc: notify-cells/drainer
            fence(Ordering::SeqCst);

            let cells = a.notify_cells();
            let mut cursor = 0usize;
            loop {
                P::check(&a)?;
                // Scan every claimed slot once, lock-free. A `Deliver` win
                // is this drainer's to hand off; `Delegated`/`Done` slots
                // are (or will be) delivered by their registrant.
                let len = cells.len();
                while cursor < len {
                    if let Take::Deliver(skey) = cells.take_at(cursor) {
                        self.notify_entry(s, key, skey, depth, &mut chain);
                    }
                    cursor += 1;
                }
                // Claims that race past this re-read are SC-ordered after
                // this drain and self-deliver (registrant protocol).
                if cells.len() == cursor {
                    a.set_status(Status::Completed);
                    self.policy.emit(worker, Event::Completed { key, life });
                    if let Some(dl) = &self.opts.deadline {
                        dl.record(key);
                    }
                    break;
                }
            }
            // Section VI "after notify" injection point: only observed if a
            // later consumer still touches this task or its data.
            P::probe(self, &a, key, Phase::AfterNotify, worker);
            Ok(())
        })();

        if let Err(f) = attempt {
            // The faulted step must not swallow a successor it already made
            // ready (its notification is consumed — nobody will re-deliver
            // it): hand the continuation back to the queues, then let
            // recovery own this task's traversal.
            if let Some((ca, ckey, clife)) = chain.take() {
                let this = Arc::clone(self);
                s.spawn_with(self.prio_of(ckey), move |s| {
                    this.compute_and_notify(s, ca, ckey, clife)
                });
            }
            P::on_compute_fault(self, s, a, key, life, f);
            return None;
        }
        chain
    }

    /// Deliver one notify-array entry inline — the inline-chain site: the
    /// gate of `NotifySuccessor`+`NotifyOnce` runs in this job, and a
    /// successor whose join counter hits zero either becomes the chain
    /// continuation or is spawned as a fresh `ComputeAndNotify` job.
    fn notify_entry(
        self: &Arc<Self>,
        s: &Scope<'_>,
        key: Key,
        skey: Key,
        depth: usize,
        chain: &mut Option<(ArenaRef<P::Desc>, Key, u64)>,
    ) {
        let Some((sd, slife)) = self.get_task(skey) else {
            debug_assert!(false, "successor {skey} vanished from the task map");
            return;
        };
        let ready = if self.policy.sabotage_chain() {
            // Deliberately broken gate (mutation testing): skips the
            // policy's exactly-once check and decrements unconditionally.
            // Under faults, re-delivered notifications then double-
            // decrement — the G3 violation the trace oracle must flag.
            self.metrics.notifications.add(s.worker_index());
            self.policy.emit(
                s.worker_index(),
                Event::Notified {
                    key: skey,
                    life: slife,
                    pred: key,
                },
            );
            // ord: AcqRel — same join-counter contract as above: the
            // observer of zero acquires every predecessor's compute.
            sd.join().fetch_sub(1, Ordering::AcqRel) - 1 == 0
        } else {
            self.notify_gate(s, sd, skey, key, slife)
        };
        if !ready {
            return;
        }
        let prio = self.prio_of(skey);
        // Chain policy: first ready successor continues inline, bounded by
        // MAX_INLINE_CHAIN; in priority mode only hot targets chain, so an
        // inlined continuation never runs ahead of queued hot work it
        // should yield to. Everything else goes through the queues and
        // stays stealable.
        let may_chain = depth < MAX_INLINE_CHAIN
            && chain.is_none()
            && (self.opts.priority.is_none() || prio == Priority::High);
        if may_chain {
            *chain = Some((sd, skey, slife));
        } else {
            let this = Arc::clone(self);
            s.spawn_with(prio, move |s| this.compute_and_notify(s, sd, skey, slife));
        }
    }
    // ft-lint: hot-path end(notify)
}
