//! `bench_pr6` — deadline-miss rate under faults: priority vs FIFO pop.
//!
//! Emits `BENCH_PR6.json`: for each critical-ratio sweep, a paired
//! comparison of the two pop orders on the *same* random layered DAG and
//! the *same* fault plan:
//!
//! * **fifo** — `SchedOpts::default()`: the pre-PR6 scheduler, every
//!   spawned job Normal priority.
//! * **prio** — `SchedOpts { priority: dag.priority_fn(), .. }`: tasks in
//!   the critical set (Hard ∪ ancestors) spawn into the High lane of the
//!   injector and the per-worker hot deques, so workers execute them
//!   before any Soft backlog.
//!
//! Deadlines self-calibrate to the machine: each sweep first measures the
//! FIFO makespan `M` in uncounted calibration reps, then Hard task `k`
//! gets the deadline `prefix_work(k)/T1 × M × β` — its
//! proportional-progress finish time under FIFO, tightened by `β < 1`.
//! `β` sits between the critical-work fraction (where priority pop is
//! expected to finish critical tasks: only critical work is ahead of
//! them) and 1.0 (where FIFO finishes them: *all* earlier work is ahead
//! of them), so FIFO blows the deadlines and critical-first holds them.
//! The DAGs are much wider than the worker count on purpose: that is the
//! backlog regime where pop *order* (not raw throughput) decides whether
//! critical chains stall behind Soft work. Fault injection
//! (`AfterCompute` data faults + localized recovery re-execution) adds
//! the paper's failure pressure on top.
//!
//! Usage: `bench_pr6 [--reps N] [--threads T] [--faults F] [--work W]
//! [--out PATH] [--check --ref BENCH_PR6.json]`
//!
//! `--check` gates (exit 1 on failure):
//! * priority pop must show a **strictly lower** deadline-miss rate than
//!   FIFO on every `critical_ratio ≤ 0.7` sweep (at ratio 1.0 the whole
//!   DAG is critical, the lanes degenerate, and the row is informational);
//! * against `--ref`, the per-sweep prio/fifo **miss-rate ratio** must not
//!   regress by more than +0.5 and the prio/fifo **throughput ratio** must
//!   not regress by more than −0.25 (the miss band is wider because the
//!   miss ratio swings more run to run than throughput does). Both are
//!   within-run ratios, so the committed reference transfers across
//!   machines of different speed.
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); resolved values and the git revision land in the JSON.

use ft_bench::dag_gen::{DagGenConfig, RandDag};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::deadline::DeadlineMonitor;
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::{FtScheduler, SchedOpts};
use nabbit_ft::TaskGraph;
use std::sync::Arc;
use std::time::Instant;

/// Critical-ratio sweep points. Ratios ≤ [`GATED_MAX_RATIO`] carry the
/// strict miss-rate gate; 1.0 is a sanity row (everything critical ⇒ the
/// priority lane degenerates to FIFO-with-overhead).
const RATIOS: &[f64] = &[0.3, 0.5, 0.7, 1.0];
/// Upper bound (inclusive) of the gated sweeps.
const GATED_MAX_RATIO: f64 = 0.7;

/// DAG shape shared by all sweeps: wide relative to any sane worker count
/// (avg width ≈ `max_width/2` ≈ 24 ≫ threads), so the ready backlog is
/// deep and pop order matters.
fn sweep_config(ratio: f64, work_unit: u64, sweep: usize) -> DagGenConfig {
    let mut cfg = DagGenConfig::new(20, 40, 0.08, 0xDA6_0000 + sweep as u64);
    cfg.critical_ratio = ratio;
    cfg.work_unit = work_unit;
    cfg
}

/// One paired sweep: both pop orders on identical DAG/fault-plan pairs.
struct SweepResult {
    ratio: f64,
    tasks: usize,
    hard: usize,
    /// Critical-work share of `T1` (what priority pop must execute before
    /// the last critical task).
    crit_frac: f64,
    /// Deadline tightening factor (see module docs).
    beta: f64,
    /// Calibrated FIFO makespan the deadlines are scaled from.
    cal_makespan_ms: f64,
    fifo_miss: f64,
    prio_miss: f64,
    fifo_tps: f64,
    prio_tps: f64,
}

impl SweepResult {
    /// Prio/fifo miss-rate ratio (< 1 means priority helps). Clamped so a
    /// zero-miss FIFO run cannot emit non-JSON infinities.
    fn miss_ratio(&self) -> f64 {
        (self.prio_miss / self.fifo_miss.max(1e-9)).min(999.0)
    }
    /// Prio/fifo throughput ratio (≈ 1 means the hot lane costs nothing).
    fn throughput_ratio(&self) -> f64 {
        self.prio_tps / self.fifo_tps.max(1e-9)
    }
    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"ratio\": {:.2},\n      \"tasks\": {},\n      \
             \"hard\": {},\n      \"crit_work_frac\": {:.4},\n      \
             \"beta\": {:.4},\n      \"cal_makespan_ms\": {:.3},\n      \
             \"fifo_miss_rate\": {:.4},\n      \"prio_miss_rate\": {:.4},\n      \
             \"miss_ratio_prio_over_fifo\": {:.4},\n      \
             \"fifo_tasks_per_s\": {:.0},\n      \"prio_tasks_per_s\": {:.0},\n      \
             \"throughput_ratio_prio_over_fifo\": {:.4}\n    }}",
            self.ratio,
            self.tasks,
            self.hard,
            self.crit_frac,
            self.beta,
            self.cal_makespan_ms,
            self.fifo_miss,
            self.prio_miss,
            self.miss_ratio(),
            self.fifo_tps,
            self.prio_tps,
            self.throughput_ratio(),
        )
    }
}

/// Mean FIFO makespan (ns) over uncounted calibration reps: absorbs the
/// machine's core count, oversubscription, and per-task scheduling
/// overhead, so the deadlines derived from it transfer across boxes.
fn fifo_makespan_ns(pool: &Pool, cfg: &DagGenConfig, reps: usize, faults: usize) -> f64 {
    let mut total = 0.0f64;
    for rep in 0..reps {
        let dag = Arc::new(RandDag::generate(cfg.clone()));
        let plan = Arc::new(FaultPlan::sample(
            &dag.all_keys(),
            faults,
            Phase::AfterCompute,
            0xCA11 + rep as u64,
        ));
        let t0 = Instant::now();
        let report = FtScheduler::with_plan(dag as _, plan).run(pool);
        total += t0.elapsed().as_nanos() as f64;
        assert!(report.sink_completed, "calibration run must complete");
    }
    total / reps as f64
}

/// Run `reps` fault-injected executions of `cfg` under one pop order and
/// return `(miss_rate, tasks_per_s)`. Each rep regenerates the DAG (fresh
/// value/poison maps) and samples a rep-specific fault plan — the same
/// sequence for both pop orders, so the comparison is paired.
/// `deadlines[k]` is the per-key deadline in ns from the run's start.
fn run_mode(
    pool: &Pool,
    cfg: &DagGenConfig,
    use_priority: bool,
    reps: usize,
    faults: usize,
    deadlines: &[f64],
) -> (f64, f64) {
    let mut misses = 0usize;
    let mut hard_total = 0usize;
    let mut tasks_total = 0usize;
    let mut elapsed = 0.0f64;
    for rep in 0..reps {
        let dag = Arc::new(RandDag::generate(cfg.clone()));
        let keys = dag.all_keys();
        let plan = Arc::new(FaultPlan::sample(
            &keys,
            faults,
            Phase::AfterCompute,
            0xFA17 + rep as u64,
        ));
        let monitor = Arc::new(DeadlineMonitor::new());
        let opts = SchedOpts {
            priority: use_priority.then(|| dag.priority_fn()),
            deadline: Some(Arc::clone(&monitor)),
        };
        let graph: Arc<dyn TaskGraph> = Arc::clone(&dag) as _;
        let t0 = Instant::now();
        let report = FtScheduler::with_opts(graph, plan, None, opts).run(pool);
        elapsed += t0.elapsed().as_secs_f64();
        assert!(report.sink_completed, "run must complete");
        tasks_total += dag.task_count();
        for k in dag.hard_tasks() {
            hard_total += 1;
            let stamp = monitor
                .stamp(k)
                .expect("hard task completed (sink done implies all done)");
            if stamp.nanos as f64 > deadlines[k as usize] {
                misses += 1;
            }
        }
    }
    (
        misses as f64 / hard_total.max(1) as f64,
        tasks_total as f64 / elapsed,
    )
}

/// Pull `(ratio, miss_ratio, throughput_ratio)` triples back out of a
/// committed `BENCH_PR6.json`. Line-oriented scan over the format this
/// binary itself emits (same no-serde approach as `bench_pr4`).
fn parse_reference(text: &str) -> Vec<(f64, f64, f64)> {
    let mut out = Vec::new();
    let mut ratio: Option<f64> = None;
    let mut miss: Option<f64> = None;
    let grab = |line: &str| -> Option<f64> {
        line.split(':')
            .nth(1)?
            .trim()
            .trim_end_matches(',')
            .parse()
            .ok()
    };
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"ratio\"") {
            ratio = grab(t);
        } else if t.starts_with("\"miss_ratio_prio_over_fifo\"") {
            miss = grab(t);
        } else if t.starts_with("\"throughput_ratio_prio_over_fifo\"") {
            if let (Some(r), Some(m), Some(th)) = (ratio.take(), miss.take(), grab(t)) {
                out.push((r, m, th));
            }
        }
    }
    out
}

fn main() {
    let mut faults = 8usize;
    let mut work_unit = 4000u64;
    let cli = ft_bench::meta::parse_args_with(
        "bench_pr6 [--reps N] [--threads T] [--faults F] [--work W] [--out PATH] \
         [--check --ref BENCH_PR6.json]",
        2,
        "BENCH_PR6.json",
        |flag, args| match flag {
            "--faults" => {
                faults = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--faults F");
                true
            }
            "--work" => {
                work_unit = args.next().and_then(|v| v.parse().ok()).expect("--work W");
                true
            }
            _ => false,
        },
    );
    let (reps, threads) = (cli.reps, cli.threads);

    let pool = Pool::new(PoolConfig::with_threads(threads));
    // Warm the pool (spawn threads, fault in the code paths) off the clock.
    {
        let warm = Arc::new(RandDag::generate(sweep_config(0.5, work_unit, 0)));
        FtScheduler::new(warm as _).run(&pool);
    }

    let mut sweeps = Vec::new();
    for (i, &ratio) in RATIOS.iter().enumerate() {
        let cfg = sweep_config(ratio, work_unit, i);
        let probe = RandDag::generate(cfg.clone());
        let total_work = probe.total_wcet() as f64;
        let crit_work: u64 = probe
            .critical_tasks()
            .iter()
            .map(|&k| probe.wcet_of(k))
            .sum();
        let crit_frac = crit_work as f64 / total_work;
        // β between the critical-work fraction (priority pop's expected
        // relative finish for critical tasks — only critical work is
        // ahead of them) and 1.0 (FIFO's — everything is ahead of them),
        // biased towards FIFO so priority keeps the larger noise margin.
        let beta = crit_frac + 0.7 * (1.0 - crit_frac);
        let makespan_ns = fifo_makespan_ns(&pool, &cfg, 2.max(reps / 2), faults);
        // Proportional-progress deadlines: keys ascend in layer order, so
        // the WCET prefix sum approximates the work that must drain
        // before `k` can run in a breadth-first (FIFO) schedule.
        let mut prefix = 0.0f64;
        let deadlines: Vec<f64> = probe
            .all_keys()
            .iter()
            .map(|&k| {
                prefix += probe.wcet_of(k) as f64;
                prefix / total_work * makespan_ns * beta
            })
            .collect();
        let (fifo_miss, fifo_tps) = run_mode(&pool, &cfg, false, reps, faults, &deadlines);
        let (prio_miss, prio_tps) = run_mode(&pool, &cfg, true, reps, faults, &deadlines);
        let s = SweepResult {
            ratio,
            tasks: probe.task_count(),
            hard: probe.hard_tasks().len(),
            crit_frac,
            beta,
            cal_makespan_ms: makespan_ns / 1e6,
            fifo_miss,
            prio_miss,
            fifo_tps,
            prio_tps,
        };
        println!(
            "ratio {:.2}: tasks={} hard={} crit_frac={:.2} beta={:.2} cal={:.1}ms  \
             miss fifo {:.3} vs prio {:.3} (ratio {:.3})  \
             tps fifo {:.0} vs prio {:.0} (ratio {:.3})",
            s.ratio,
            s.tasks,
            s.hard,
            s.crit_frac,
            s.beta,
            s.cal_makespan_ms,
            s.fifo_miss,
            s.prio_miss,
            s.miss_ratio(),
            s.fifo_tps,
            s.prio_tps,
            s.throughput_ratio(),
        );
        sweeps.push(s);
    }

    let rows: Vec<String> = sweeps.iter().map(|s| s.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \"faults\": {},\n  \
         \"work_unit\": {},\n  \"sweeps\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::json_header("bench_pr6/v1", threads, reps),
        faults,
        work_unit,
        rows.join(",\n")
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);

    if !cli.check {
        return;
    }

    // --- Gate ------------------------------------------------------------
    let mut failures = Vec::new();
    for s in &sweeps {
        if s.ratio > GATED_MAX_RATIO {
            continue;
        }
        if s.prio_miss >= s.fifo_miss {
            failures.push(format!(
                "ratio {:.2}: priority miss rate {:.4} is not strictly below FIFO {:.4}",
                s.ratio, s.prio_miss, s.fifo_miss
            ));
        }
    }
    if let Some(path) = cli.reference {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let reference_rows = parse_reference(&text);
        assert!(!reference_rows.is_empty(), "no sweeps parsed from {path}");
        // Ratio-of-ratios bands: miss-rate and throughput ratios compare
        // prio to fifo *within the same run on the same box*, so the
        // committed reference transfers across machine speeds. Per-sweep
        // miss ratios swing by ±0.4 run-to-run at CI rep counts, so the
        // miss band gates the *mean over the gated sweeps* (noise averages
        // out; a broken comparator pushes every sweep toward 1.0 and moves
        // the mean well past the band). Throughput ratios are tight per
        // sweep and stay gated individually.
        const MISS_BAND: f64 = 0.35;
        const THR_BAND: f64 = 0.25;
        let mut miss_cur = Vec::new();
        let mut miss_ref = Vec::new();
        for (ref_ratio, ref_miss, ref_thr) in &reference_rows {
            if *ref_ratio > GATED_MAX_RATIO {
                continue;
            }
            let Some(s) = sweeps.iter().find(|s| (s.ratio - ref_ratio).abs() < 1e-6) else {
                failures.push(format!("reference sweep ratio {ref_ratio:.2} missing"));
                continue;
            };
            miss_cur.push(s.miss_ratio());
            miss_ref.push(*ref_miss);
            let d_thr = s.throughput_ratio() - ref_thr;
            if d_thr < -THR_BAND {
                failures.push(format!(
                    "ratio {:.2}: throughput ratio {:.3} vs reference {ref_thr:.3} — \
                     regressed past -{THR_BAND}",
                    s.ratio,
                    s.throughput_ratio()
                ));
            }
            println!(
                "check ratio {:.2}: miss ratio {:.3} vs reference {ref_miss:.3}, \
                 Δ throughput ratio {d_thr:+.3} (gate < -{THR_BAND})",
                s.ratio,
                s.miss_ratio()
            );
        }
        if !miss_cur.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let (m_cur, m_ref) = (mean(&miss_cur), mean(&miss_ref));
            let d_miss = m_cur - m_ref;
            if d_miss > MISS_BAND {
                failures.push(format!(
                    "mean miss ratio over gated sweeps {m_cur:.3} vs reference {m_ref:.3} — \
                     regressed past +{MISS_BAND}"
                ));
            }
            println!("check mean miss ratio: Δ {d_miss:+.3} (gate > +{MISS_BAND})");
        }
    }
    ft_bench::meta::exit_gate(&failures);
}
