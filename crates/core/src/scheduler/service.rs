//! The resident graph service: one long-lived executor serving a stream of
//! concurrent graph instances.
//!
//! [`Engine::run`] is batch-shaped: one engine, one blocking call, one
//! pool-wide quiescence barrier. [`GraphService`] turns the same engines
//! into a *service*: each [`GraphService::submit`] opens an **epoch** — a
//! graph instance with its own task-map namespace, completion latch, trace
//! shard and [`RunReport`] — and independent instances execute concurrently
//! over the shared workers. Namespace isolation falls out of the existing
//! one-engine-one-run design: every submission is its own [`Engine`], so
//! its task map, metrics, recovery table and optional trace are private to
//! the epoch, and the paper's localized recovery never crosses an epoch
//! boundary (a fault in one submitted graph re-executes tasks of that
//! graph only; co-resident instances observe nothing).
//!
//! Admission control is explicit: a bounded in-flight-instance budget
//! (an [`AdmissionGate`]) plus a queued-jobs watermark turn `submit` into
//! `Err(`[`Backpressure`]`)` instead of unbounded queue growth. The slot is
//! returned by the instance's quiesce hook — the latch-tripping decrement
//! of the instance's last job — so occupancy tracks actual execution, not
//! ticket lifetimes.
//!
//! The service works over any [`Executor`]: the multithreaded pool (whose
//! workers drain instances autonomously) and the deterministic
//! single-threaded pool (call [`GraphService::drive`] to run all pending
//! instances in one seeded interleaving before waiting on tickets).

use super::engine::{Engine, FtPolicy};
use crate::metrics::RunReport;
use ft_steal::instance::{AdmissionGate, InstanceHandle, InstanceStats, QuiesceHook};
use ft_steal::pool::{Executor, Job, Scope};
use ft_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Admission-control settings for a [`GraphService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum instances admitted but not yet quiesced. Submissions beyond
    /// this budget get [`Backpressure`] with
    /// [`BackpressureReason::InFlightBudget`].
    pub max_in_flight: usize,
    /// Refuse admission while the executor's queues already hold at least
    /// this many jobs ([`BackpressureReason::QueueDepth`]). The default is
    /// high enough that the in-flight budget is normally the binding
    /// constraint.
    pub queued_jobs_watermark: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 16,
            queued_jobs_watermark: 100_000,
        }
    }
}

/// Which admission bound a rejected submission hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressureReason {
    /// The bounded in-flight-instance budget is exhausted.
    InFlightBudget,
    /// The executor's queues are above the configured watermark.
    QueueDepth,
}

/// A submission was refused; retry after draining some in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Which bound rejected the submission.
    pub reason: BackpressureReason,
    /// Instances in flight at rejection time.
    pub in_flight: u64,
    /// Jobs visible in the executor's queues at rejection time.
    pub queued: u64,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            BackpressureReason::InFlightBudget => write!(
                f,
                "backpressure: in-flight instance budget exhausted ({} in flight)",
                self.in_flight
            ),
            BackpressureReason::QueueDepth => write!(
                f,
                "backpressure: executor queue depth {} above watermark",
                self.queued
            ),
        }
    }
}

impl std::error::Error for Backpressure {}

/// Counters shared with instance quiesce hooks (hence `'static` + `Arc`).
struct ServiceShared {
    gate: AdmissionGate,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
}

/// Aggregate service counters (a snapshot; counters advance concurrently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Instances admitted so far.
    pub submitted: u64,
    /// Instances that have quiesced.
    pub completed: u64,
    /// Submissions refused with [`Backpressure`].
    pub rejected: u64,
    /// Instances currently in flight.
    pub in_flight: u64,
    /// The configured in-flight budget.
    pub max_in_flight: u64,
}

/// A resident front end over one long-lived executor; see the module docs.
pub struct GraphService<'e> {
    exec: &'e dyn Executor,
    watermark: u64,
    next_id: AtomicU64,
    shared: Arc<ServiceShared>,
}

impl std::fmt::Debug for GraphService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphService")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'e> GraphService<'e> {
    /// Service over `exec` with default admission settings.
    pub fn new(exec: &'e dyn Executor) -> Self {
        Self::with_config(exec, ServiceConfig::default())
    }

    /// Service over `exec` with explicit admission settings.
    pub fn with_config(exec: &'e dyn Executor, cfg: ServiceConfig) -> Self {
        GraphService {
            exec,
            watermark: cfg.queued_jobs_watermark.max(1),
            next_id: AtomicU64::new(0),
            shared: Arc::new(ServiceShared {
                gate: AdmissionGate::new(cfg.max_in_flight),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        }
    }

    /// Submit `engine` as a new instance (epoch).
    ///
    /// On admission the engine's traversal starts from its sink exactly as
    /// in [`Engine::run`], but asynchronously: the returned
    /// [`InstanceTicket`] is the awaitable/pollable submission handle.
    /// Every policy works — a clean or fault-planned `FtScheduler`, or the
    /// baseline scheduler — because the engine *is* the namespace.
    pub fn submit<P: FtPolicy>(
        &self,
        engine: &Arc<Engine<P>>,
    ) -> Result<InstanceTicket<P>, Backpressure> {
        let queued = self.exec.queued_jobs();
        if queued >= self.watermark {
            // ord: the counters in this file are Relaxed — statistics only;
            // admission correctness lives in the gate's SeqCst protocol.
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Backpressure {
                reason: BackpressureReason::QueueDepth,
                in_flight: self.shared.gate.in_flight(),
                queued,
            });
        }
        if let Err(held) = self.shared.gate.try_acquire() {
            // ord: Relaxed — statistics counter read at quiescence.
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Backpressure {
                reason: BackpressureReason::InFlightBudget,
                in_flight: held,
                queued,
            });
        }
        // ord: Relaxed — submitted is a statistics counter; next_id only
        // needs uniqueness, which the RMW provides at any ordering.
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();

        // The instance's root job mirrors the prologue of `Engine::run`:
        // insert the sink, then spawn its traversal at the sink's priority.
        // All of it runs *inside* the instance scope, so the whole
        // traversal tree lands on this instance's latch.
        let this = Arc::clone(engine);
        let root = Job::new(move |s: &Scope<'_>| {
            let sink = this.graph.sink();
            this.insert_if_absent(sink, s.worker_index());
            let Some((sd, life)) = this.get_task(sink) else {
                debug_assert!(false, "sink {sink} vanished right after insertion");
                return;
            };
            let prio = this.prio_of(sink);
            let engine = Arc::clone(&this);
            s.spawn_with(prio, move |s| engine.init_and_compute(s, sd, sink, life));
        });

        let shared = Arc::clone(&self.shared);
        let hook: QuiesceHook = Box::new(move || {
            // ord: Relaxed — statistics counter read at quiescence.
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.gate.release();
        });
        let handle = self.exec.submit_instance(root, Some(hook));
        Ok(InstanceTicket {
            id,
            engine: Arc::clone(engine),
            handle,
            start,
        })
    }

    /// Run pending instance work on executors without autonomous workers
    /// (forwards to [`Executor::drive`]; no-op on the threaded pool).
    pub fn drive(&self) {
        self.exec.drive();
    }

    /// Instances currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.shared.gate.in_flight()
    }

    /// Snapshot of the aggregate service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            // ord: Relaxed — monitoring snapshot; counters are commutative
            // fetch_adds and the snapshot makes no cross-field promises.
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            in_flight: self.shared.gate.in_flight(),
            max_in_flight: self.shared.gate.limit(),
        }
    }
}

/// Awaitable/pollable handle to one admitted instance.
///
/// Dropping the ticket does not cancel the instance; the epoch runs to
/// quiescence and releases its admission slot regardless.
pub struct InstanceTicket<P: FtPolicy> {
    id: u64,
    engine: Arc<Engine<P>>,
    handle: InstanceHandle,
    start: Instant,
}

impl<P: FtPolicy> std::fmt::Debug for InstanceTicket<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceTicket")
            .field("id", &self.id)
            .field("done", &self.is_done())
            .finish()
    }
}

impl<P: FtPolicy> InstanceTicket<P> {
    /// Service-assigned instance id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True once every job of the instance has finished (pollable).
    pub fn is_done(&self) -> bool {
        self.handle.is_done()
    }

    /// The engine running this instance (its metrics/trace/task map are
    /// the per-tenant namespace).
    pub fn engine(&self) -> &Arc<Engine<P>> {
        &self.engine
    }

    /// Block until the instance quiesces, then produce its report.
    ///
    /// Re-raises the first panic that occurred inside the instance (and
    /// only this instance). On a single-threaded executor, call
    /// [`GraphService::drive`] first or this blocks forever.
    pub fn wait(self) -> InstanceReport {
        self.handle.wait();
        self.finish()
    }

    /// Non-blocking completion poll: the report if the instance has
    /// quiesced, the ticket back otherwise.
    pub fn try_wait(self) -> Result<InstanceReport, InstanceTicket<P>> {
        if self.handle.is_done() {
            Ok(self.finish())
        } else {
            Err(self)
        }
    }

    fn finish(self) -> InstanceReport {
        if let Some(payload) = self.handle.take_panic() {
            std::panic::resume_unwind(payload);
        }
        InstanceReport {
            id: self.id,
            report: self.engine.finish_report(self.start),
            jobs: self.handle.stats(),
        }
    }
}

/// Per-instance outcome: the epoch's own [`RunReport`] (fault, recovery
/// and re-execution counters included) plus its job accounting.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Service-assigned instance id.
    pub id: u64,
    /// The instance's run report — same shape as [`Engine::run`] returns,
    /// with `elapsed` measured from submission to report creation.
    pub report: RunReport,
    /// Pool-side job accounting for the instance.
    pub jobs: InstanceStats,
}
