//! Meta-test: the protocol rules must catch a *real* regression, not just
//! synthetic fixtures. Copy the real `engine.rs` into a throwaway mini
//! workspace with programmatically generated manifests, verify the copy
//! lints clean, then delete one `// sc:` fence tag — exactly the edit a
//! careless refactor would make — and assert L6 fires at that fence.

use ft_lint::manifest::protocol_fingerprint;
use ft_lint::{run, Config};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// A unique, self-cleaning scratch workspace under the target dir (kept
/// out of `std::env::temp_dir()` so parallel checkouts never collide).
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/lint-meta")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create mini workspace");
        MiniWorkspace { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).expect("mkdir");
        fs::write(path, contents).expect("write");
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Build a mini workspace holding the *real* engine.rs plus manifests
/// generated from its actual content (fingerprint included), so the copy
/// starts provably clean under the full `run()` policy.
fn engine_workspace(tag: &str) -> (MiniWorkspace, String) {
    let engine = fs::read_to_string(workspace_root().join("crates/core/src/scheduler/engine.rs"))
        .expect("real engine.rs readable");

    let ws = MiniWorkspace::new(tag);
    ws.write("crates/core/src/scheduler/engine.rs", &engine);
    ws.write(
        "docs/ALGORITHM.md",
        "# Mini algorithm doc\n\n## Notify cells <a id=\"notify-cells\"></a>\n",
    );
    ws.write(
        "docs/PROTOCOLS.toml",
        "[[protocol]]\nname = \"notify-cells\"\nanchor = \"notify-cells\"\nloom = []\nfields = []\nnotes = \"mini workspace: suites live in the real tree\"\n",
    );
    ws.write(
        "docs/LOOM_COVERAGE.toml",
        &format!(
            "[[entry]]\npath = \"crates/core/src/scheduler/engine.rs\"\nfingerprint = \"{}\"\nmodels = []\nnotes = \"mini workspace: modeled in the real tree\"\n",
            protocol_fingerprint(&engine)
        ),
    );
    (ws, engine)
}

fn mini_config(root: &Path) -> Config {
    let mut config = Config::workspace(root);
    // Only core exists in the mini tree; missing dirs would error.
    config.runtime_dirs = vec![PathBuf::from("crates/core/src")];
    config.ordering_dirs = vec![PathBuf::from("crates/core/src")];
    config.field_dirs = vec![PathBuf::from("crates/core/src")];
    config
}

#[test]
fn untagging_a_real_fence_trips_l6() {
    let (ws, engine) = engine_workspace("untag");
    let config = mini_config(&ws.root);

    // The pristine copy of the real file is clean under the full policy.
    let report = run(&config).expect("lint mini workspace");
    assert!(
        report.violations.is_empty(),
        "pristine engine.rs copy must lint clean:\n{}",
        report.render_human()
    );

    // A careless refactor drops the registrant-side protocol tag.
    let tag_line = "// sc: notify-cells/registrant";
    assert_eq!(
        engine.matches(tag_line).count(),
        1,
        "engine.rs carries exactly one registrant tag"
    );
    let fence_line = 1
        + engine
            .lines()
            .position(|l| l.trim() == tag_line)
            .expect("tag present")
        + 1; // tag line index -> 1-based line of the fence call below it
    let untagged: String = engine
        .lines()
        .filter(|l| l.trim() != tag_line)
        .collect::<Vec<_>>()
        .join("\n");
    ws.write("crates/core/src/scheduler/engine.rs", &untagged);

    let report = run(&config).expect("lint mutated workspace");
    let l6: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "L6")
        .collect();
    assert!(
        !l6.is_empty(),
        "deleting a fence tag must trip L6:\n{}",
        report.render_human()
    );
    // The untagged fence itself is flagged (one line up now that the tag
    // comment is gone), in the right file.
    assert!(
        l6.iter().any(|v| {
            v.file == "crates/core/src/scheduler/engine.rs" && v.line == fence_line - 1
        }),
        "expected an L6 hit at the untagged fence (line {}):\n{}",
        fence_line - 1,
        report.render_human()
    );
}

#[test]
fn editing_atomics_without_restamp_trips_l8() {
    let (ws, engine) = engine_workspace("stale");
    let config = mini_config(&ws.root);
    assert!(run(&config).expect("lint").violations.is_empty());

    // An ordering edit on a fingerprinted line — exactly the change that
    // must force a loom-coverage re-verify.
    let old = "let val = a.join().fetch_sub(1, Ordering::AcqRel) - 1;";
    assert_eq!(engine.matches(old).count(), 1);
    let edited = engine.replace(
        old,
        "let val = a.join().fetch_sub(1, Ordering::Release) - 1;",
    );
    ws.write("crates/core/src/scheduler/engine.rs", &edited);

    let report = run(&config).expect("lint mutated workspace");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "L8" && v.message.contains("stale fingerprint")),
        "editing an atomic line without --restamp must trip L8:\n{}",
        report.render_human()
    );
}
