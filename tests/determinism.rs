//! Theorem 1 end-to-end: "the task graph execution produces the same result
//! with and without faults" — for every benchmark, every phase, and a range
//! of fault densities.

use ft_apps::cholesky::Cholesky;
use ft_apps::fw::Fw;
use ft_apps::lcs::Lcs;
use ft_apps::lu::Lu;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::FtScheduler;
use std::sync::Arc;

const CFG: (usize, usize) = (96, 16); // nb = 6

fn check<A: BenchApp + 'static>(app: Arc<A>, count: usize, phase: Phase, seed: u64) {
    let candidates = app.tasks_of_class(VersionClass::Rand);
    // Exclude the sink for after-notify plans: a fault on the sink after it
    // notified is unobservable inside the run by design.
    let sink = app.sink();
    let candidates: Vec<_> = if phase == Phase::AfterNotify {
        candidates.into_iter().filter(|&k| k != sink).collect()
    } else {
        candidates
    };
    let plan = Arc::new(FaultPlan::sample(&candidates, count, phase, seed));
    let pool = Pool::new(PoolConfig::with_threads(4));
    let name = app.name();
    let report =
        FtScheduler::with_plan(Arc::clone(&app) as Arc<dyn nabbit_ft::TaskGraph>, plan).run(&pool);
    assert!(report.sink_completed, "{name} {phase:?} x{count}");
    let outcome = app
        .verify_detailed()
        .unwrap_or_else(|e| panic!("{name} {phase:?} x{count}: {e}"));
    assert!(
        outcome.skipped_poisoned as u64 <= report.injected,
        "{name}: more poisoned final blocks ({}) than injected faults ({})",
        outcome.skipped_poisoned,
        report.injected
    );
    if phase != Phase::AfterNotify {
        assert_eq!(
            outcome.skipped_poisoned, 0,
            "{name} {phase:?}: observed-phase faults must be fully recovered"
        );
    }
}

#[test]
fn lcs_identical_results_under_faults() {
    for (count, phase, seed) in [
        (0, Phase::AfterCompute, 1),
        (4, Phase::BeforeCompute, 2),
        (8, Phase::AfterCompute, 3),
        (16, Phase::AfterCompute, 4),
        (8, Phase::AfterNotify, 5),
    ] {
        check(
            Arc::new(Lcs::new(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn sw_identical_results_under_faults() {
    for (count, phase, seed) in [
        (0, Phase::AfterCompute, 1),
        (4, Phase::BeforeCompute, 2),
        (8, Phase::AfterCompute, 3),
        (16, Phase::AfterCompute, 4),
        (8, Phase::AfterNotify, 5),
    ] {
        check(
            Arc::new(Sw::new(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn fw_identical_results_under_faults() {
    for (count, phase, seed) in [
        (0, Phase::AfterCompute, 1),
        (4, Phase::BeforeCompute, 2),
        (8, Phase::AfterCompute, 3),
        (8, Phase::AfterNotify, 5),
    ] {
        check(
            Arc::new(Fw::new(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn fw_single_version_identical_results_under_faults() {
    for (count, phase, seed) in [(4, Phase::AfterCompute, 7), (8, Phase::AfterCompute, 8)] {
        check(
            Arc::new(Fw::with_single_version(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn lu_identical_results_under_faults() {
    for (count, phase, seed) in [
        (0, Phase::AfterCompute, 1),
        (4, Phase::BeforeCompute, 2),
        (8, Phase::AfterCompute, 3),
        (8, Phase::AfterNotify, 5),
    ] {
        check(
            Arc::new(Lu::new(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn cholesky_identical_results_under_faults() {
    for (count, phase, seed) in [
        (0, Phase::AfterCompute, 1),
        (4, Phase::BeforeCompute, 2),
        (8, Phase::AfterCompute, 3),
        (8, Phase::AfterNotify, 5),
    ] {
        check(
            Arc::new(Cholesky::new(AppConfig::new(CFG.0, CFG.1))),
            count,
            phase,
            seed,
        );
    }
}

#[test]
fn vlast_chain_recovery_preserves_results() {
    // The worst case for data reuse: fail producers of last versions.
    let app = Arc::new(Lu::new(AppConfig::new(CFG.0, CFG.1)));
    let last = app.tasks_of_class(VersionClass::Last);
    let plan = Arc::new(FaultPlan::sample(&last, 6, Phase::AfterCompute, 99));
    let pool = Pool::new(PoolConfig::with_threads(4));
    let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
    assert!(report.sink_completed);
    app.verify().unwrap();
    // Chains imply at least as many re-executions as faults.
    assert!(report.re_executions >= 6);
}

#[test]
fn repeated_seeds_are_reproducible() {
    // Same app seed + same plan seed → same injected count and same result.
    let run = || {
        let app = Arc::new(Sw::new(AppConfig::new(CFG.0, CFG.1)));
        let keys = app.tasks_of_class(VersionClass::Rand);
        let plan = Arc::new(FaultPlan::sample(&keys, 8, Phase::AfterCompute, 42));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        (report.injected, app.result().unwrap())
    };
    let (i1, r1) = run();
    let (i2, r2) = run();
    assert_eq!(i1, i2);
    assert_eq!(r1, r2, "identical inputs must give identical results");
}
