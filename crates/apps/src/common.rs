//! Shared infrastructure for the five benchmarks: key encoding, the
//! harness-facing [`BenchApp`] trait, task classification by output version
//! (Section VI "Task type": v=0, v=rand, v=last), and input generation.

use nabbit_ft::graph::{Key, TaskGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bit-field key encoding: `| tag:4 | k:20 | i:20 | j:20 |`.
///
/// All benchmark task spaces fit comfortably (tile indices < 2^20); the
/// encoding is dense, collision-free per benchmark, and cheap to decode in
/// the predecessor/successor functions the scheduler calls constantly.
pub mod keys {
    use nabbit_ft::graph::Key;

    const FIELD: u32 = 20;
    const MASK: i64 = (1 << FIELD) - 1;

    /// Encode `(tag, k, i, j)` into a task key.
    #[inline]
    pub fn encode(tag: u8, k: usize, i: usize, j: usize) -> Key {
        debug_assert!(k < (1 << FIELD) && i < (1 << FIELD) && j < (1 << FIELD));
        ((tag as i64) << (3 * FIELD))
            | ((k as i64) << (2 * FIELD))
            | ((i as i64) << FIELD)
            | j as i64
    }

    /// Decode a task key back into `(tag, k, i, j)`.
    #[inline]
    pub fn decode(key: Key) -> (u8, usize, usize, usize) {
        (
            (key >> (3 * FIELD)) as u8,
            ((key >> (2 * FIELD)) & MASK) as usize,
            ((key >> FIELD) & MASK) as usize,
            (key & MASK) as usize,
        )
    }
}

/// Size configuration of a blocked benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppConfig {
    /// Problem size `N` (matrix/sequence length).
    pub n: usize,
    /// Block (tile) size `B`; must divide `n`.
    pub b: usize,
    /// Seed for input generation.
    pub seed: u64,
}

impl AppConfig {
    /// Config with `n`, `b` and a default seed.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b > 0 && n % b == 0, "block size {b} must divide N {n}");
        AppConfig {
            n,
            b,
            seed: 0xFEED_5EED,
        }
    }

    /// Number of tiles per dimension.
    pub fn nb(&self) -> usize {
        self.n / self.b
    }

    /// Replace the seed.
    pub fn with_seed(self, seed: u64) -> Self {
        AppConfig { seed, ..self }
    }
}

/// Task classification by the version of the data block it produces
/// (Section VI "Task type").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionClass {
    /// `v=0`: produces the first version of a block — recovery loses at
    /// most the task itself.
    First,
    /// `v=last`: produces the last version — recovery can trigger a chain
    /// of re-executions of all earlier producers of that block.
    Last,
    /// `v=rand`: produces some intermediate version.
    Rand,
}

/// Result of a lenient verification pass.
///
/// An *after-notify* fault whose task is never revisited is, by design,
/// detected but not recovered ("a failed task whose successors already have
/// been computed is not recovered"). Such blocks stay poisoned after the
/// run; [`BenchApp::verify_detailed`] skips them (they carry a detected
/// error that demand-driven recovery would repair on next use) and reports
/// how many were skipped so tests can bound the count by the number of
/// injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Final blocks compared against the reference.
    pub checked: usize,
    /// Final blocks skipped because they are still poisoned.
    pub skipped_poisoned: usize,
}

/// A benchmark application: a task graph plus everything the experiment
/// harness needs around it.
pub trait BenchApp: TaskGraph {
    /// Benchmark name as in the paper's figures.
    fn name(&self) -> &'static str;

    /// The configuration this instance was built with.
    fn config(&self) -> AppConfig;

    /// Every task key in the graph (used by fault-plan sampling and
    /// injection-verification).
    fn all_tasks(&self) -> Vec<Key>;

    /// Candidate tasks for a fault class. `Rand` returns tasks producing
    /// *some* version, sampled across the version range.
    fn tasks_of_class(&self, class: VersionClass) -> Vec<Key>;

    /// Verify the final output against an independent sequential reference,
    /// skipping (and counting) final blocks left poisoned by unobserved
    /// after-notify faults.
    fn verify_detailed(&self) -> Result<VerifyOutcome, String>;

    /// Strict verification: every final block must match the reference.
    fn verify(&self) -> Result<(), String> {
        let o = self.verify_detailed()?;
        if o.skipped_poisoned > 0 {
            Err(format!(
                "{} final blocks still poisoned (unrecovered after-notify faults)",
                o.skipped_poisoned
            ))
        } else {
            Ok(())
        }
    }
}

/// Deterministic random byte sequence over a small alphabet (sequence
/// benchmarks).
pub fn random_sequence(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..alphabet)).collect()
}

/// Deterministic random `f64` matrix entries in `(lo, hi)`, row-major.
pub fn random_matrix(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Extract tile `(ti, tj)` of size `b×b` from a row-major `n×n` matrix.
pub fn extract_tile(m: &[f64], n: usize, b: usize, ti: usize, tj: usize) -> Vec<f64> {
    let mut tile = vec![0.0; b * b];
    for r in 0..b {
        let src = (ti * b + r) * n + tj * b;
        tile[r * b..(r + 1) * b].copy_from_slice(&m[src..src + b]);
    }
    tile
}

/// Maximum absolute element-wise difference between two equal-length
/// slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for &(tag, k, i, j) in &[
            (0u8, 0usize, 0usize, 0usize),
            (1, 5, 7, 9),
            (7, 1 << 19, (1 << 20) - 1, 12345),
        ] {
            let key = keys::encode(tag, k, i, j);
            assert_eq!(keys::decode(key), (tag, k, i, j));
        }
    }

    #[test]
    fn keys_are_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for tag in 0..3u8 {
            for k in 0..8 {
                for i in 0..8 {
                    for j in 0..8 {
                        assert!(seen.insert(keys::encode(tag, k, i, j)));
                    }
                }
            }
        }
    }

    #[test]
    fn config_validates_divisibility() {
        let c = AppConfig::new(128, 32);
        assert_eq!(c.nb(), 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn config_rejects_nondivisor() {
        AppConfig::new(100, 33);
    }

    #[test]
    fn random_sequence_deterministic_and_bounded() {
        let a = random_sequence(1000, 4, 7);
        let b = random_sequence(1000, 4, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 4));
        let c = random_sequence(1000, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn extract_tile_correct() {
        let n = 4;
        let m: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let t = extract_tile(&m, n, 2, 1, 0);
        assert_eq!(t, vec![8.0, 9.0, 12.0, 13.0]);
        let t = extract_tile(&m, n, 2, 0, 1);
        assert_eq!(t, vec![2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
