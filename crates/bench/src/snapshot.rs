//! Shared plumbing for the `bench_pr*` snapshot binaries: baseline-vs-FT
//! measurement of one workload and its JSON row format. Every snapshot
//! binary emits the same row shape, so reference files from earlier PRs
//! stay comparable with later ones.

use crate::grids::EmptyGrid;
use crate::measure::Stats;
use crate::{make_app, run_baseline, run_ft, AppKind};
use ft_apps::AppConfig;
use ft_steal::pool::Pool;
use nabbit_ft::graph::TaskGraph;
use nabbit_ft::inject::FaultPlan;
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::sync::Arc;

/// Baseline-vs-FT timing for one workload.
pub struct BenchResult {
    /// Workload name (stable across PR snapshots — reference files are
    /// matched by it).
    pub name: String,
    /// Number of distinct tasks the graph executes.
    pub tasks: u64,
    /// Baseline-scheduler timing.
    pub baseline: Stats,
    /// FT-scheduler timing (no faults injected).
    pub ft: Stats,
}

impl BenchResult {
    /// No-fault FT overhead, percent (of means — the paper's statistic).
    pub fn overhead_pct(&self) -> f64 {
        self.ft.overhead_pct(&self.baseline)
    }

    /// No-fault FT overhead computed from best-of-reps times. Means on a
    /// loaded CI box absorb scheduler-interference spikes and can swing an
    /// overhead estimate by tens of points; minima are near-deterministic,
    /// so regression gates compare this.
    pub fn overhead_min_pct(&self) -> f64 {
        (self.ft.min - self.baseline.min) / self.baseline.min * 100.0
    }

    /// One JSON object row (manual formatting; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        let per_s = |s: &Stats| {
            if s.mean > 0.0 {
                self.tasks as f64 / s.mean
            } else {
                0.0
            }
        };
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"tasks\": {},\n      \
             \"baseline_mean_s\": {:.6},\n      \"baseline_std_s\": {:.6},\n      \
             \"baseline_tasks_per_s\": {:.1},\n      \
             \"ft_mean_s\": {:.6},\n      \"ft_std_s\": {:.6},\n      \
             \"ft_tasks_per_s\": {:.1},\n      \"ft_overhead_pct\": {:.2},\n      \
             \"ft_overhead_min_pct\": {:.2}\n    }}",
            self.name,
            self.tasks,
            self.baseline.mean,
            self.baseline.std,
            per_s(&self.baseline),
            self.ft.mean,
            self.ft.std,
            per_s(&self.ft),
            self.overhead_pct(),
            self.overhead_min_pct(),
        )
    }
}

/// Baseline-vs-FT on the scheduler-bound [`EmptyGrid`].
pub fn bench_grid(pool: &Pool, n: i64, reps: usize) -> BenchResult {
    let tasks = (n * n) as u64;
    let baseline = crate::measure(reps, || {
        let g: Arc<dyn TaskGraph> = Arc::new(EmptyGrid { n });
        let r = BaselineScheduler::new(g).run(pool);
        assert!(r.sink_completed);
    });
    let ft = crate::measure(reps, || {
        let g: Arc<dyn TaskGraph> = Arc::new(EmptyGrid { n });
        let r = FtScheduler::new(g).run(pool);
        assert!(r.sink_completed);
    });
    BenchResult {
        name: format!("grid-empty-{n}x{n}"),
        tasks,
        baseline,
        ft,
    }
}

/// Baseline-vs-FT on one of the compute-bound paper apps.
pub fn bench_app(pool: &Pool, kind: AppKind, cfg: AppConfig, reps: usize) -> BenchResult {
    let mut tasks = 0;
    let baseline = crate::measure(reps, || {
        let app = make_app(kind, cfg);
        let r = run_baseline(pool, app);
        assert!(r.sink_completed);
        tasks = r.distinct_tasks_executed;
    });
    let ft = crate::measure(reps, || {
        let app = make_app(kind, cfg);
        let r = run_ft(pool, app, FaultPlan::none());
        assert!(r.sink_completed);
    });
    BenchResult {
        name: kind.name().to_string(),
        tasks,
        baseline,
        ft,
    }
}

/// Extract `(name, ft_overhead_pct)` pairs from a `bench_pr*` JSON file
/// without a JSON dependency: scans for the `"name"` / `"ft_overhead_pct"`
/// key patterns the emitters above produce.
pub fn parse_overheads(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(j) = rest.find("\"ft_overhead_pct\": ") else {
            break;
        };
        rest = &rest[j + "\"ft_overhead_pct\": ".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse() {
            out.push((name, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_row_roundtrips_through_parse_overheads() {
        let r = BenchResult {
            name: "grid-empty-8x8".into(),
            tasks: 64,
            baseline: Stats::from_samples(&[0.010, 0.012]),
            ft: Stats::from_samples(&[0.011, 0.013]),
        };
        let json = format!("{{\n  \"benches\": [\n{}\n  ]\n}}\n", r.to_json());
        let parsed = parse_overheads(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "grid-empty-8x8");
        assert!((parsed[0].1 - r.overhead_pct()).abs() < 0.01);
    }

    #[test]
    fn parse_overheads_reads_multiple_rows_and_negatives() {
        let json = r#"{
  "benches": [
    { "name": "a", "ft_overhead_pct": 4.43 },
    { "name": "b", "ft_overhead_pct": -1.20 }
  ]
}"#;
        let parsed = parse_overheads(json);
        assert_eq!(
            parsed,
            vec![("a".to_string(), 4.43), ("b".to_string(), -1.20)]
        );
    }
}
