//! Loom model tests for the PR-9 wait-free block reads
//! ([`nabbit_ft::blocks::BlockStore`]): readers racing writers through
//! copy-on-write table replacement, eviction tombstoning, and the
//! `latest` counter publication.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nabbit-ft --test loom_blocks
//! ```
//!
//! Under `--cfg loom` the store compiles against `loom::sync::atomic`, so
//! the table-pointer swap and the `latest` Release store / Acquire load
//! pair are model-exploration points. `LOOM_MAX_ITERS` / `LOOM_SEED`
//! control the exploration budget and make failures replayable.
#![cfg(loom)]

use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use std::sync::Arc;

/// A reader loops `read_latest` while a writer publishes versions 0..=3.
/// Every observation must be a version the writer actually published,
/// carrying that version's payload (publish order: table first, then
/// `latest` — a torn pair would surface as Missing or a payload mismatch),
/// and the observed latest version must be monotone.
#[test]
fn read_latest_races_publish() {
    const LAST: u64 = 3;
    loom::model(|| {
        let s = Arc::new(BlockStore::<u64>::new(1, Retention::KeepLast(2)));
        let s2 = Arc::clone(&s);
        let writer = loom::thread::spawn(move || {
            for v in 0..=LAST {
                s2.publish(0, v, 100 + v as i64, vec![v; 4]);
            }
        });
        let mut last_seen: Option<u64> = None;
        loop {
            match s.read_latest(0) {
                Err(BlockError::Missing) => {
                    assert!(
                        last_seen.is_none(),
                        "latest went missing after {last_seen:?}"
                    );
                }
                Ok((v, data)) => {
                    assert!(v <= LAST, "version {v} never published");
                    assert_eq!(data[0], v, "payload of another version under latest {v}");
                    assert!(
                        last_seen.is_none_or(|p| v >= p),
                        "latest went backwards: {v} after {last_seen:?}"
                    );
                    last_seen = Some(v);
                    if v == LAST {
                        break;
                    }
                }
                other => panic!("latest must never be poisoned/overwritten here: {other:?}"),
            }
        }
        writer.join().unwrap();
        assert_eq!(s.latest_version(0), Some(LAST));
    });
}

/// A reader pinned on one version while the writer's churn slides the
/// retention window over it: the read is either the correct payload or
/// `Overwritten` with the recorded producer — never Missing, never another
/// version's data, and never blocked behind the writer's table swaps.
#[test]
fn read_through_eviction_sees_data_or_tombstone() {
    loom::model(|| {
        let s = Arc::new(BlockStore::<u64>::new(1, Retention::KeepLast(1)));
        s.publish(0, 0, 100, vec![42]);
        let s2 = Arc::clone(&s);
        let writer = loom::thread::spawn(move || {
            for v in 1..=2u64 {
                s2.publish(0, v, 100 + v as i64, vec![v]);
            }
        });
        let mut overwritten = false;
        for _ in 0..8 {
            match s.read(0, 0) {
                Ok(data) => {
                    assert!(!overwritten, "version 0 came back after eviction");
                    assert_eq!(&*data, &vec![42]);
                }
                Err(BlockError::Overwritten { producer }) => {
                    assert_eq!(producer, 100, "tombstone lost its producer");
                    overwritten = true;
                }
                other => panic!("read(0,0) must be data or Overwritten: {other:?}"),
            }
        }
        writer.join().unwrap();
        assert_eq!(
            s.read(0, 0),
            Err(BlockError::Overwritten { producer: 100 }),
            "after the churn v0 is evicted with attribution"
        );
    });
}

/// Pinned (resilient input) versions are immune to the writer's churn:
/// every read during concurrent publishes returns the pinned payload.
#[test]
fn pinned_read_survives_concurrent_churn() {
    loom::model(|| {
        let s = Arc::new(BlockStore::<u64>::new(1, Retention::KeepLast(1)));
        s.publish_pinned(0, 0, vec![7]);
        let s2 = Arc::clone(&s);
        let writer = loom::thread::spawn(move || {
            for v in 1..=3u64 {
                s2.publish(0, v, 200 + v as i64, vec![v]);
            }
        });
        for _ in 0..8 {
            let data = s.read(0, 0).expect("pinned version must stay resident");
            assert_eq!(&*data, &vec![7]);
        }
        writer.join().unwrap();
        assert!(s.is_live(0, 0));
    });
}
