//! Lock-striped reference implementation of the concurrent map.
//!
//! [`LockedMap`] is the pre-seqlock `ShardedMap`: each shard is an open
//! hash table guarded by a `parking_lot::RwLock`, so every `get` pays a
//! read-lock acquire/release (two atomic RMWs) even when no writer exists.
//! It is kept — API-compatible with [`crate::ShardedMap`] — as the
//! baseline for the lock-freedom ablation benches (`bench_pr4`,
//! `ablation_cmap`): the wait-free read path in `map.rs` is justified by
//! measuring against exactly this implementation.

use parking_lot::RwLock;

use crate::map::MapStats;

/// Multiplicative (Fibonacci) hash constant, 2^64 / φ.
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn hash_key(key: i64) -> u64 {
    (key as u64).wrapping_mul(HASH_K)
}

/// One entry slot in a shard table.
#[derive(Clone)]
enum Slot<V> {
    Empty,
    Full(i64, V),
}

/// A single shard: linear-probing open hash table.
struct Shard<V> {
    slots: Vec<Slot<V>>,
    len: usize,
}

impl<V: Clone> Shard<V> {
    fn new(cap: usize) -> Self {
        Shard {
            slots: vec![Slot::Empty; cap],
            len: 0,
        }
    }

    fn probe(&self, key: i64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow_if_needed(&mut self) {
        // Keep load factor below 0.7.
        if self.len * 10 < self.slots.len() * 7 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = (hash_key(k) as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }

    fn insert_if_absent(&mut self, key: i64, make: impl FnOnce() -> V) -> bool {
        if self.probe(key).is_some() {
            return false;
        }
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        while matches!(self.slots[i], Slot::Full(..)) {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot::Full(key, make());
        self.len += 1;
        true
    }

    fn replace(&mut self, key: i64, value: V) -> Option<V> {
        if let Some(i) = self.probe(key) {
            if let Slot::Full(_, v) = std::mem::replace(&mut self.slots[i], Slot::Full(key, value))
            {
                return Some(v);
            }
            unreachable!("probe returned a full slot");
        }
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        while matches!(self.slots[i], Slot::Full(..)) {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot::Full(key, value);
        self.len += 1;
        None
    }
}

/// The lock-based sharded map kept as the ablation baseline.
pub struct LockedMap<V> {
    shards: Vec<RwLock<Shard<V>>>,
    shift: u32,
}

impl<V> std::fmt::Debug for LockedMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<V: Clone> Default for LockedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> LockedMap<V> {
    /// Map with a default shard count (4× available cores, power of two).
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self::with_shards((cores * 4).next_power_of_two())
    }

    /// Map with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        LockedMap {
            shards: (0..shards).map(|_| RwLock::new(Shard::new(64))).collect(),
            shift: 64 - shards.trailing_zeros(),
        }
    }

    #[inline]
    fn shard_for(&self, key: i64) -> &RwLock<Shard<V>> {
        // High bits pick the shard; low bits drive in-shard probing.
        let idx = if self.shards.len() == 1 {
            0
        } else {
            (hash_key(key) >> self.shift) as usize
        };
        &self.shards[idx]
    }

    /// Insert `make()` under `key` if no entry exists; true if inserted.
    pub fn insert_if_absent(&self, key: i64, make: impl FnOnce() -> V) -> bool {
        self.shard_for(key).write().insert_if_absent(key, make)
    }

    /// Clone out the current value for `key` (takes the shard read lock).
    pub fn get(&self, key: i64) -> Option<V> {
        let shard = self.shard_for(key).read();
        shard.probe(key).map(|i| match &shard.slots[i] {
            Slot::Full(_, v) => v.clone(),
            Slot::Empty => unreachable!(),
        })
    }

    /// True if the map has an entry for `key`.
    pub fn contains(&self, key: i64) -> bool {
        self.shard_for(key).read().probe(key).is_some()
    }

    /// Insert or overwrite, returning the previous value if any.
    pub fn replace(&self, key: i64, value: V) -> Option<V> {
        self.shard_for(key).write().replace(key, value)
    }

    /// Atomically read-modify-write the entry for `key` (see
    /// [`crate::ShardedMap::update_cas`]).
    pub fn update_cas<R>(&self, key: i64, f: impl FnOnce(Option<&V>) -> (Option<V>, R)) -> R {
        let mut shard = self.shard_for(key).write();
        let current = shard.probe(key);
        let (new, ret) = match current {
            Some(i) => match &shard.slots[i] {
                Slot::Full(_, v) => f(Some(v)),
                Slot::Empty => unreachable!(),
            },
            None => f(None),
        };
        if let Some(v) = new {
            shard.replace(key, v);
        }
        ret
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len).sum()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy statistics for diagnostics/ablation.
    pub fn stats(&self) -> MapStats {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.read().len).collect();
        MapStats {
            len: lens.iter().sum(),
            shards: self.shards.len(),
            max_shard_len: lens.into_iter().max().unwrap_or(0),
        }
    }

    /// Snapshot of all `(key, value)` pairs. Not atomic across shards; used
    /// only after quiescence (metrics, verification).
    pub fn entries(&self) -> Vec<(i64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for slot in &shard.slots {
                if let Slot::Full(k, v) = slot {
                    out.push((*k, v.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_map_basic_ops() {
        let m = LockedMap::with_shards(4);
        assert!(m.insert_if_absent(1, || "a"));
        assert!(!m.insert_if_absent(1, || "b"));
        assert_eq!(m.get(1), Some("a"));
        assert_eq!(m.replace(1, "c"), Some("a"));
        assert_eq!(m.get(1), Some("c"));
        assert!(m.contains(1));
        assert!(!m.contains(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn locked_map_growth() {
        let m = LockedMap::with_shards(1);
        for k in 0..5_000i64 {
            assert!(m.insert_if_absent(k, || k * 2));
        }
        for k in 0..5_000i64 {
            assert_eq!(m.get(k), Some(k * 2));
        }
        assert_eq!(m.stats().len, 5_000);
    }

    #[test]
    fn locked_map_update_cas() {
        let m: LockedMap<u64> = LockedMap::with_shards(2);
        let out = m.update_cas(3, |cur| {
            assert!(cur.is_none());
            (Some(7), "stored")
        });
        assert_eq!(out, "stored");
        assert_eq!(m.get(3), Some(7));
    }
}
