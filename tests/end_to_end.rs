//! End-to-end runs of the five paper benchmarks across schedulers, thread
//! counts and fault scenarios — the integration surface the experiment
//! harness (`ft-bench`) relies on.

use ft_apps::cholesky::Cholesky;
use ft_apps::fw::Fw;
use ft_apps::lcs::Lcs;
use ft_apps::lu::Lu;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::analysis;
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use nabbit_ft::TaskGraph;
use std::sync::Arc;

fn apps(n: usize, b: usize) -> Vec<Arc<dyn BenchApp>> {
    vec![
        Arc::new(Lcs::new(AppConfig::new(n, b))),
        Arc::new(Sw::new(AppConfig::new(n, b))),
        Arc::new(Fw::new(AppConfig::new(n, b))),
        Arc::new(Lu::new(AppConfig::new(n, b))),
        Arc::new(Cholesky::new(AppConfig::new(n, b))),
    ]
}

/// Upcast helper: `Arc<dyn BenchApp>` → `Arc<dyn TaskGraph>`.
fn as_graph(app: &Arc<dyn BenchApp>) -> Arc<dyn TaskGraph> {
    struct Wrap(Arc<dyn BenchApp>);
    impl TaskGraph for Wrap {
        fn sink(&self) -> i64 {
            self.0.sink()
        }
        fn predecessors(&self, k: i64) -> Vec<i64> {
            self.0.predecessors(k)
        }
        fn successors(&self, k: i64) -> Vec<i64> {
            self.0.successors(k)
        }
        fn compute(&self, k: i64, ctx: &nabbit_ft::ComputeCtx<'_>) -> Result<(), nabbit_ft::Fault> {
            self.0.compute(k, ctx)
        }
        fn poison_outputs(&self, k: i64) {
            self.0.poison_outputs(k)
        }
    }
    Arc::new(Wrap(Arc::clone(app)))
}

#[test]
fn all_benchmarks_baseline_all_threads() {
    for threads in [1, 4] {
        let pool = Pool::new(PoolConfig::with_threads(threads));
        for app in apps(96, 16) {
            let report = BaselineScheduler::new(as_graph(&app)).run(&pool);
            assert!(report.sink_completed, "{} baseline t={threads}", app.name());
            app.verify()
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", app.name()));
        }
    }
}

#[test]
fn all_benchmarks_ft_fault_free_all_threads() {
    for threads in [1, 4] {
        let pool = Pool::new(PoolConfig::with_threads(threads));
        for app in apps(96, 16) {
            let report = FtScheduler::new(as_graph(&app)).run(&pool);
            assert!(report.sink_completed, "{} ft t={threads}", app.name());
            assert_eq!(report.re_executions, 0, "{}", app.name());
            app.verify()
                .unwrap_or_else(|e| panic!("{} t={threads}: {e}", app.name()));
        }
    }
}

#[test]
fn ft_and_baseline_execute_same_task_count() {
    let pool = Pool::new(PoolConfig::with_threads(4));
    for app in apps(96, 16) {
        let b = BaselineScheduler::new(as_graph(&app)).run(&pool);
        let f = FtScheduler::new(as_graph(&app)).run(&pool);
        assert_eq!(
            b.computes,
            f.computes,
            "{}: FT must add no executions without faults",
            app.name()
        );
    }
}

#[test]
fn all_benchmarks_survive_percent_scale_faults() {
    // The paper's "2%" scenario at test scale: 2% of tasks fail after
    // compute, on v=rand tasks.
    let pool = Pool::new(PoolConfig::with_threads(4));
    for app in apps(96, 16) {
        let cand = app.tasks_of_class(VersionClass::Rand);
        let count = (cand.len() / 50).max(1);
        let plan = Arc::new(FaultPlan::sample(&cand, count, Phase::AfterCompute, 77));
        let report = FtScheduler::with_plan(as_graph(&app), plan).run(&pool);
        assert!(report.sink_completed, "{}", app.name());
        assert_eq!(report.injected as usize, count, "{}", app.name());
        app.verify()
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    }
}

#[test]
fn all_benchmarks_survive_vlast_and_v0_faults() {
    let pool = Pool::new(PoolConfig::with_threads(4));
    for class in [VersionClass::First, VersionClass::Last] {
        for app in apps(96, 16) {
            let cand = app.tasks_of_class(class);
            let count = 3.min(cand.len());
            let plan = Arc::new(FaultPlan::sample(&cand, count, Phase::AfterCompute, 13));
            let report = FtScheduler::with_plan(as_graph(&app), plan).run(&pool);
            assert!(report.sink_completed, "{} {class:?}", app.name());
            app.verify()
                .unwrap_or_else(|e| panic!("{} {class:?}: {e}", app.name()));
        }
    }
}

#[test]
fn graph_stats_consistent_across_benchmarks() {
    // T from analysis equals |all_tasks()|, and the FT scheduler executes
    // exactly that many tasks fault-free.
    let pool = Pool::new(PoolConfig::with_threads(4));
    for app in apps(96, 16) {
        let g = as_graph(&app);
        let stats = analysis::graph_stats(g.as_ref());
        assert_eq!(
            stats.tasks,
            app.all_tasks().len(),
            "{}: analysis vs enumeration",
            app.name()
        );
        let report = FtScheduler::new(g).run(&pool);
        assert_eq!(
            report.computes as usize,
            stats.tasks,
            "{}: executions vs tasks",
            app.name()
        );
    }
}

#[test]
fn injection_verification_reexec_matches_intent() {
    // The paper "verify[s] the fault injection by ensuring that the number
    // of tasks recovered matches the loss of work intended". For
    // after-compute faults on single-assignment LCS, re-executions match
    // the planned count exactly.
    let pool = Pool::new(PoolConfig::with_threads(4));
    let app: Arc<dyn BenchApp> = Arc::new(Lcs::new(AppConfig::new(128, 16)));
    let cand = app.all_tasks();
    let plan = Arc::new(FaultPlan::sample(&cand, 12, Phase::AfterCompute, 21));
    let report = FtScheduler::with_plan(as_graph(&app), plan).run(&pool);
    assert!(report.sink_completed);
    assert_eq!(report.injected, 12);
    assert_eq!(report.re_executions, 12);
    app.verify().unwrap();
}

#[test]
fn speedup_shape_sanity() {
    // Not a benchmark — just the shape: 4 threads should not be slower
    // than 1 thread by more than noise allows on a compute-heavy app.
    let app1: Arc<dyn BenchApp> = Arc::new(Fw::new(AppConfig::new(128, 32)));
    let pool1 = Pool::new(PoolConfig::with_threads(1));
    let t1 = {
        let r = FtScheduler::new(as_graph(&app1)).run(&pool1);
        assert!(r.sink_completed);
        r.elapsed
    };
    let app4: Arc<dyn BenchApp> = Arc::new(Fw::new(AppConfig::new(128, 32)));
    let pool4 = Pool::new(PoolConfig::with_threads(4));
    let t4 = {
        let r = FtScheduler::new(as_graph(&app4)).run(&pool4);
        assert!(r.sink_completed);
        r.elapsed
    };
    assert!(
        t4 < t1 * 3,
        "4 threads ({t4:?}) absurdly slower than 1 ({t1:?})"
    );
}

#[test]
fn degenerate_single_tile_configs() {
    // B == N: one tile per matrix — the smallest legal configuration for
    // every benchmark must still complete and verify.
    let pool = Pool::new(PoolConfig::with_threads(2));
    for app in apps(32, 32) {
        let report = FtScheduler::new(as_graph(&app)).run(&pool);
        assert!(report.sink_completed, "{} single-tile", app.name());
        app.verify()
            .unwrap_or_else(|e| panic!("{} single-tile: {e}", app.name()));
    }
}

#[test]
fn tiny_block_configs() {
    // B = 8: many tiny tasks; stresses scheduling overhead paths.
    let pool = Pool::new(PoolConfig::with_threads(4));
    for app in apps(64, 8) {
        let cand = app.tasks_of_class(VersionClass::Rand);
        let plan = Arc::new(FaultPlan::sample(&cand, 5, Phase::AfterCompute, 3));
        let report = FtScheduler::with_plan(as_graph(&app), plan).run(&pool);
        assert!(report.sink_completed, "{} tiny blocks", app.name());
        app.verify()
            .unwrap_or_else(|e| panic!("{} tiny blocks: {e}", app.name()));
    }
}
